//! Static design-space partitioning via a regression decision tree
//! (paper §4.3.1).
//!
//! "We determine and rank the rules by building a binary decision tree that
//! clusters the design points which potentially have similar resource
//! utilization or latency ... These nodes are determined by greedily
//! selecting the best rule to maximize the information gain" (Eq. 1), with
//! variance as the impurity function since latency is a regressed value.
//!
//! Rule candidates follow the paper's two methodologies: splits are
//! preferred on the factors of the template (RDD-operator) loop and on
//! shallower loop levels, implemented as a multiplicative bias on the
//! information gain. Training data comes from probing the HLS model on a
//! deterministic sample — the stand-in for the offline rule set the paper
//! derives from "grouping the applications with similar loop hierarchy".
//!
//! Because all leaves are disjoint and their union is the original space,
//! partitioning preserves optimality (§4.3.1).

use crate::space::DesignSpace;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use s2fa_hlsir::KernelSummary;
use s2fa_tuner::{Config, SearchSpace};

/// A split rule: `param <= threshold` (on domain indices).
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Parameter index.
    pub param: usize,
    /// Parameter name (for reports).
    pub name: String,
    /// Inclusive upper bound of the left branch (domain index).
    pub threshold: u32,
}

/// A node of the regression tree.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        space: SearchSpace,
        rules: Vec<String>,
        mean: f64,
        /// Best (lowest) sampled objective in the leaf — its potential.
        best: f64,
        n: usize,
    },
    Split {
        rule: Rule,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// The built tree: its leaves are the DSE partitions.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
}

impl DecisionTree {
    /// The partitions, *ranked*: most promising first (lowest sampled
    /// objective), the realization of "we determine and rank the rules"
    /// (§4.3.1). The FCFS scheduler therefore explores high-potential
    /// partitions before low-potential ones.
    pub fn leaves(&self) -> Vec<SearchSpace> {
        let mut out: Vec<(f64, SearchSpace)> = Vec::new();
        fn walk(n: &Node, out: &mut Vec<(f64, SearchSpace)>) {
            match n {
                Node::Leaf { space, best, .. } => out.push((*best, space.clone())),
                Node::Split { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
            }
        }
        walk(&self.root, &mut out);
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out.into_iter().map(|(_, s)| s).collect()
    }

    /// Every split rule in the tree, root-first.
    pub fn split_rules(&self) -> Vec<Rule> {
        let mut out = Vec::new();
        fn walk(n: &Node, out: &mut Vec<Rule>) {
            if let Node::Split { rule, left, right } = n {
                out.push(rule.clone());
                walk(left, out);
                walk(right, out);
            }
        }
        walk(&self.root, &mut out);
        out
    }

    /// Human-readable description of every partition's rule path, in the
    /// same ranked order as [`DecisionTree::leaves`].
    pub fn describe(&self) -> Vec<String> {
        let mut ranked: Vec<(f64, String)> = Vec::new();
        fn walk(n: &Node, out: &mut Vec<(f64, String)>) {
            match n {
                Node::Leaf {
                    rules,
                    mean,
                    best,
                    n,
                    ..
                } => {
                    let path = if rules.is_empty() {
                        "(entire space)".to_string()
                    } else {
                        rules.join(" ∧ ")
                    };
                    out.push((
                        *best,
                        format!("{path}  [n={n}, mean ln(ms)={mean:.2}, best ln(ms)={best:.2}]"),
                    ));
                }
                Node::Split { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
            }
        }
        walk(&self.root, &mut ranked);
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
        ranked.into_iter().map(|(_, d)| d).collect()
    }
}

/// Builds the partition tree from probe samples.
#[derive(Debug, Clone)]
pub struct Partitioner {
    /// Number of probe samples used as training data.
    pub samples: usize,
    /// Desired number of leaves (≥ the worker count so the FCFS scheduler
    /// keeps every core busy).
    pub target_leaves: usize,
    /// Depth cap.
    pub max_depth: u32,
    /// RNG seed for the probe sample.
    pub rng_seed: u64,
    /// Information-gain bias for template-loop factors (the RDD-semantics
    /// rule).
    pub task_loop_bias: f64,
    /// Per-level decay of the loop-hierarchy bias.
    pub depth_decay: f64,
}

impl Default for Partitioner {
    fn default() -> Self {
        Partitioner {
            samples: 256,
            target_leaves: 16,
            max_depth: 8,
            rng_seed: 0x5EED,
            task_loop_bias: 1.2,
            depth_decay: 0.97,
        }
    }
}

struct Sample {
    cfg: Config,
    y: f64,
}

impl Partitioner {
    /// Builds the tree for a design space, probing latencies with `probe`
    /// (which receives raw tuner configs and returns the objective in ms,
    /// `+inf` for infeasible points).
    pub fn partition(
        &self,
        ds: &DesignSpace,
        summary: &KernelSummary,
        probe: &mut dyn FnMut(&Config) -> f64,
    ) -> DecisionTree {
        let mut rng = SmallRng::seed_from_u64(self.rng_seed);
        let full = ds.space().clone();
        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let cfg = full.random(&mut rng);
            let v = probe(&cfg);
            // Regress on ln(ms); infeasible points get a large but finite
            // penalty so they inform the tree instead of poisoning it.
            let y = if v.is_finite() {
                v.max(1e-9).ln()
            } else {
                30.0
            };
            samples.push(Sample { cfg, y });
        }
        // Per-parameter split bias from the two partition methodologies.
        let bias: Vec<f64> = (0..full.params().len())
            .map(|i| {
                let mut b = 1.0;
                if ds.is_task_loop_param(i, summary) {
                    b *= self.task_loop_bias;
                }
                if let Some(d) = ds.param_loop_depth(i, summary) {
                    b *= self.depth_decay.powi(d as i32);
                }
                b
            })
            .collect();
        let root = self.grow(full, samples, Vec::new(), 0, &bias, &mut 1);
        DecisionTree { root }
    }

    fn grow(
        &self,
        space: SearchSpace,
        samples: Vec<Sample>,
        rules: Vec<String>,
        depth: u32,
        bias: &[f64],
        leaves: &mut usize,
    ) -> Node {
        let n = samples.len();
        let mean = if n == 0 {
            0.0
        } else {
            samples.iter().map(|s| s.y).sum::<f64>() / n as f64
        };
        let best = samples.iter().map(|s| s.y).fold(f64::INFINITY, f64::min);
        if depth >= self.max_depth || *leaves >= self.target_leaves || n < 8 {
            return Node::Leaf {
                space,
                rules,
                mean,
                best,
                n,
            };
        }
        let Some((rule, gain)) = best_split(&space, &samples, bias) else {
            return Node::Leaf {
                space,
                rules,
                mean,
                best,
                n,
            };
        };
        if gain <= 1e-9 {
            return Node::Leaf {
                space,
                rules,
                mean,
                best,
                n,
            };
        }
        *leaves += 1; // splitting one leaf adds one
        let (ls, rs): (Vec<Sample>, Vec<Sample>) = samples
            .into_iter()
            .partition(|s| s.cfg[rule.param] <= rule.threshold);
        let left_space = space.restricted(rule.param, 0, rule.threshold);
        let right_space = space.restricted(rule.param, rule.threshold + 1, u32::MAX);
        let mut lrules = rules.clone();
        lrules.push(format!("{} <= {}", rule.name, rule.threshold));
        let mut rrules = rules;
        rrules.push(format!("{} > {}", rule.name, rule.threshold));
        let left = self.grow(left_space, ls, lrules, depth + 1, bias, leaves);
        let right = self.grow(right_space, rs, rrules, depth + 1, bias, leaves);
        Node::Split {
            rule,
            left: Box::new(left),
            right: Box::new(right),
        }
    }
}

fn variance(ys: &[f64]) -> f64 {
    if ys.is_empty() {
        return 0.0;
    }
    let m = ys.iter().sum::<f64>() / ys.len() as f64;
    ys.iter().map(|y| (y - m).powi(2)).sum::<f64>() / ys.len() as f64
}

/// Finds the `(param, threshold)` split maximizing biased information gain
/// (Eq. 1 with variance impurity).
fn best_split(space: &SearchSpace, samples: &[Sample], bias: &[f64]) -> Option<(Rule, f64)> {
    let n = samples.len() as f64;
    let ys: Vec<f64> = samples.iter().map(|s| s.y).collect();
    let imp = variance(&ys);
    let mut best: Option<(Rule, f64)> = None;
    for (p, def) in space.params().iter().enumerate() {
        let (lo, hi) = space.bounds(p);
        if hi <= lo {
            continue;
        }
        for t in lo..hi {
            let (mut l, mut r) = (Vec::new(), Vec::new());
            for s in samples {
                if s.cfg[p] <= t {
                    l.push(s.y);
                } else {
                    r.push(s.y);
                }
            }
            if l.len() < 2 || r.len() < 2 {
                continue;
            }
            let ig =
                imp - (l.len() as f64 / n) * variance(&l) - (r.len() as f64 / n) * variance(&r);
            let score = ig * bias[p];
            if best.as_ref().map(|(_, b)| score > *b).unwrap_or(true) {
                best = Some((
                    Rule {
                        param: p,
                        name: def.name.clone(),
                        threshold: t,
                    },
                    score,
                ));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_hlsir::{BufferDir, BufferInfo, LoopId, LoopInfo, OpCounts};
    use s2fa_tuner::Config;

    fn summary() -> KernelSummary {
        KernelSummary {
            name: "k".into(),
            loops: vec![
                LoopInfo {
                    id: LoopId(0),
                    var: "t".into(),
                    trip_count: 256,
                    depth: 0,
                    parent: None,
                    children: vec![LoopId(1)],
                    body_ops: OpCounts::new(),
                    accesses: vec![],
                    carried: None,
                },
                LoopInfo {
                    id: LoopId(1),
                    var: "j".into(),
                    trip_count: 32,
                    depth: 1,
                    parent: Some(LoopId(0)),
                    children: vec![],
                    body_ops: OpCounts::new(),
                    accesses: vec![],
                    carried: None,
                },
            ],
            buffers: vec![BufferInfo {
                name: "in_1".into(),
                elem_bits: 32,
                len: 32,
                dir: BufferDir::In,
                broadcast: false,
            }],
            task_loop: LoopId(0),
            tasks_hint: 256,
            dataflow: None,
        }
    }

    /// Synthetic landscape: latency dominated by the task-loop parallel
    /// factor index.
    fn probe(ds: &DesignSpace, cfg: &Config) -> f64 {
        let i = ds.space().param_index("L0.parallel").unwrap();
        let j = ds.space().param_index("L1.pipeline").unwrap();
        1000.0 / (1.0 + cfg[i] as f64 * 3.0 + cfg[j] as f64)
    }

    #[test]
    fn produces_disjoint_covering_partitions() {
        let s = summary();
        let ds = DesignSpace::build(&s);
        let tree = Partitioner::default().partition(&ds, &s, &mut |c| probe(&ds, c));
        let leaves = tree.leaves();
        assert!(leaves.len() >= 2, "tree did not split");
        assert!(leaves.len() <= Partitioner::default().target_leaves + 1);
        // Disjoint and covering: every random config lies in exactly one
        // leaf.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(123);
        for _ in 0..200 {
            let c = ds.space().random(&mut rng);
            let hits = leaves.iter().filter(|l| l.contains(&c)).count();
            assert_eq!(hits, 1, "config in {hits} partitions");
        }
    }

    #[test]
    fn splits_on_the_dominant_factor() {
        let s = summary();
        let ds = DesignSpace::build(&s);
        let tree = Partitioner::default().partition(&ds, &s, &mut |c| probe(&ds, c));
        let desc = tree.describe();
        // at least one rule mentions the factor that actually drives
        // latency in the synthetic landscape
        assert!(
            desc.iter().any(|d| d.contains("L0.parallel")),
            "rules: {desc:?}"
        );
    }

    #[test]
    fn deterministic() {
        let s = summary();
        let ds = DesignSpace::build(&s);
        let t1 = Partitioner::default().partition(&ds, &s, &mut |c| probe(&ds, c));
        let t2 = Partitioner::default().partition(&ds, &s, &mut |c| probe(&ds, c));
        assert_eq!(t1.describe(), t2.describe());
    }

    #[test]
    fn constant_landscape_yields_single_leaf() {
        let s = summary();
        let ds = DesignSpace::build(&s);
        let tree = Partitioner::default().partition(&ds, &s, &mut |_| 42.0);
        assert_eq!(tree.leaves().len(), 1);
        assert!(tree.describe()[0].contains("entire space"));
    }

    #[test]
    fn infeasible_points_do_not_poison() {
        let s = summary();
        let ds = DesignSpace::build(&s);
        let i = ds.space().param_index("L0.parallel").unwrap();
        let tree = Partitioner::default().partition(&ds, &s, &mut |c| {
            if c[i] > 5 {
                f64::INFINITY
            } else {
                100.0 / (1.0 + c[i] as f64)
            }
        });
        // The infeasible region is exactly "L0.parallel > 5"; the tree
        // should carve near it.
        assert!(tree.leaves().len() >= 2);
    }
}
