//! The parallel DSE driver (paper Fig. 2).
//!
//! Runs S2FA's fast DSE flow: identify the space, partition it with the
//! decision tree, generate two seeds per partition, and explore partitions
//! in parallel with a first-come-first-serve schedule over the worker
//! cores, each partition running the OpenTuner-substitute loop under the
//! Shannon-entropy stopping criterion. Switching the three optimizations
//! off ([`vanilla_options`]) reproduces the Fig. 3 baseline: one space, one
//! random seed, top-8 parallel evaluation, and a fixed 4-hour time limit.
//!
//! ## Execution model
//!
//! All estimator calls go through one shared [`EvalEngine`]: the
//! partitioner's probe pass, every partition's seeds, and the tuning loops
//! hit the same memo table, so overlapping design points are synthesized
//! once. Partitions run with *full* budget on a work-stealing pool of real
//! OS threads (each tuning batch additionally fans out over
//! `eval_threads`), and the virtual FCFS schedule of Fig. 2 is then
//! *simulated* deterministically at merge time: partitions are assigned in
//! index order to the virtual worker that frees first, and each
//! partition's trajectory is truncated to the budget that worker had left.
//! A tuning run's trajectory does not depend on its budget except as a
//! stopping point, so the truncated prefix is byte-identical to what a
//! live run under that budget would have produced — which is what makes
//! the outcome independent of OS scheduling, thread counts, and caching.
//! The replay leans on the `s2fa-trace` clock-accounting invariant that
//! every event of a batch carries the batch-completion minute, and the
//! `truncation_equals_live_run_at_shorter_budget` property test asserts
//! the prefix equivalence event for event.
//!
//! [`run_dse_traced`] additionally streams the virtual schedule (run,
//! partition, and evaluation events) plus host-side cache activity
//! through a [`TraceSink`] — the `s2fa_cli --trace out.jsonl` flight
//! recorder.

use crate::entropy::EntropyStop;
use crate::partition::Partitioner;
use crate::space::DesignSpace;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use s2fa_engine::{CacheStats, EvalEngine, WorkerPool};
use s2fa_hlsir::KernelSummary;
use s2fa_hlssim::{Estimate, Estimator};
use s2fa_lint::Legality;
use s2fa_merlin::DesignConfig;
use s2fa_obs::Profiler;
use s2fa_trace::{Event, NullSink, TechniqueStats, TechniqueTable, TraceSink};
use s2fa_tuner::{
    Measurement, NoImprovement, StopReason, StoppingCriterion, ThreadedObjective, TimeLimitOnly,
    TraceEvent, TuningOptions, TuningOutcome, TuningRun,
};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Sample size behind [`PartitionRun::dead_fraction`] — enough for a
/// coarse share estimate at negligible cost (the oracle runs the model
/// walk only, no estimator bookkeeping).
const DEAD_FRACTION_SAMPLES: usize = 64;
use std::sync::Arc;

/// Which early-stopping criterion a DSE run uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StoppingKind {
    /// Vanilla: only the wall-clock budget (4 h in the paper).
    TimeLimit,
    /// The "trivial criteria": stop after `k` consecutive non-improving
    /// points (the paper evaluates `k = 10`).
    Trivial {
        /// Non-improving streak length that terminates the run.
        k: usize,
    },
    /// S2FA's Shannon-entropy criterion (Eq. 2).
    Entropy {
        /// Stability threshold θ on `|H(D_i) − H(D_{i−1})|`.
        theta: f64,
        /// Consecutive stable iterations required.
        n: usize,
    },
}

/// Options for one DSE run.
#[derive(Debug, Clone)]
pub struct DseOptions {
    /// Enable decision-tree space partitioning (§4.3.1).
    pub partition: bool,
    /// Enable performance/area seed generation (§4.3.2).
    pub seeds: bool,
    /// Early-stopping criterion (§4.3.3).
    pub stopping: StoppingKind,
    /// Worker cores (8 on the f1.2xlarge host).
    pub workers: usize,
    /// Candidates evaluated in parallel *within* one tuning run (vanilla
    /// OpenTuner uses the 8 cores this way; S2FA uses 1 because its cores
    /// run partitions).
    pub parallel_evals: usize,
    /// Virtual wall-clock budget in minutes.
    pub budget_minutes: f64,
    /// RNG seed (everything downstream derives from it).
    pub rng_seed: u64,
    /// Partitioner settings.
    pub partitioner: Partitioner,
    /// Real OS threads measuring one tuning batch in parallel. Purely a
    /// wall-clock knob: outcomes are identical for any value (the virtual
    /// clock is governed by `parallel_evals` and `workers`).
    pub eval_threads: usize,
    /// Enable the shared memoized estimate cache. Also purely a
    /// wall-clock knob: hits re-charge the stored virtual HLS minutes, so
    /// outcomes are identical with caching on or off.
    pub caching: bool,
    /// Enable the `s2fa-lint` legality pre-screen ahead of the estimator:
    /// statically infeasible points keep their `+inf` objective but charge
    /// zero virtual HLS minutes and never invoke the estimator. Off by
    /// default so existing outcomes stay bit-identical; the screen is
    /// exact, so turning it on can only shrink the virtual clock, never
    /// change an objective value.
    pub prescreen: bool,
    /// Enable the dependence-aware pre-screen: with dataflow facts
    /// attached to the summary (`hlsir::dataflow::attach`), points that
    /// replicate a loop with a proven cross-iteration write-race are
    /// pruned as nondeterministic (`S2FA-E303`) ahead of the estimator.
    /// Implies `prescreen`. Off by default; without attached facts the
    /// verdict degenerates to the resource screen, so existing goldens
    /// stay bit-identical.
    pub dataflow_prescreen: bool,
    /// Work-unit size (configs per pool chunk) for the persistent
    /// evaluation pool; `0` picks an automatic size from the batch length
    /// and executor count. Purely a wall-clock knob — the deterministic
    /// index-slot merge makes outcomes identical for any chunking.
    pub eval_chunk: usize,
}

impl Default for DseOptions {
    fn default() -> Self {
        DseOptions::s2fa()
    }
}

impl DseOptions {
    /// The full S2FA flow: partition + seeds + entropy stopping, 8 workers,
    /// 4-hour cap.
    pub fn s2fa() -> DseOptions {
        DseOptions {
            partition: true,
            seeds: true,
            stopping: StoppingKind::Entropy { theta: 0.10, n: 3 },
            workers: 8,
            parallel_evals: 1,
            budget_minutes: 240.0,
            rng_seed: 2018,
            partitioner: Partitioner::default(),
            eval_threads: 8,
            caching: true,
            prescreen: false,
            dataflow_prescreen: false,
            eval_chunk: 0,
        }
    }
}

/// The Fig. 3 baseline: vanilla OpenTuner on the same 8 cores.
pub fn vanilla_options() -> DseOptions {
    DseOptions {
        partition: false,
        seeds: false,
        stopping: StoppingKind::TimeLimit,
        workers: 8,
        parallel_evals: 8,
        budget_minutes: 240.0,
        rng_seed: 2018,
        partitioner: Partitioner::default(),
        eval_threads: 8,
        caching: true,
        prescreen: false,
        dataflow_prescreen: false,
        eval_chunk: 0,
    }
}

/// Per-partition result summary.
#[derive(Debug, Clone)]
pub struct PartitionRun {
    /// Partition index (tree leaf order).
    pub index: usize,
    /// The rule path describing the partition.
    pub rules: String,
    /// Worker core it ran on.
    pub worker: usize,
    /// Virtual minute the partition started exploring.
    pub start_minute: f64,
    /// Minutes the partition's exploration took.
    pub elapsed_minutes: f64,
    /// Evaluations spent.
    pub evaluations: u64,
    /// Evaluations in flight when the partition's budget ran out —
    /// harvested into the results but clamped to the deadline (the
    /// tuner's deadline-kill semantics, see `TuningRun::run`).
    pub killed_evals: u64,
    /// Best objective found in the partition (ms; `+inf` if none).
    pub best_value: f64,
    /// Why the partition's run ended.
    pub reason: StopReason,
    /// Fraction of a deterministic uniform sample of this partition that
    /// the `s2fa-lint` legality pre-screen proves statically infeasible.
    /// Diagnostic only (a side RNG stream; never feeds the search), and
    /// reported whether or not pruning is enabled.
    pub dead_fraction: f64,
}

/// Result of a full DSE run.
#[derive(Debug, Clone)]
pub struct DseOutcome {
    /// Best design configuration found and its estimate.
    pub best: Option<(DesignConfig, Estimate)>,
    /// Global convergence trace: (virtual minute, best-so-far objective in
    /// ms) across all partitions, non-increasing.
    pub convergence: Vec<(f64, f64)>,
    /// Makespan: the minute the last partition finished.
    pub elapsed_minutes: f64,
    /// Total design points evaluated.
    pub total_evaluations: u64,
    /// Number of partitions explored.
    pub partitions: usize,
    /// Per-partition details.
    pub per_partition: Vec<PartitionRun>,
    /// Per-technique counters aggregated across every partition's
    /// truncated trajectory (sorted by technique name; seeds appear as
    /// `"seed"`).
    pub techniques: Vec<TechniqueStats>,
    /// Total evaluations that were in flight at a partition deadline
    /// (sum of `PartitionRun::killed_evals`).
    pub killed_evals: u64,
    /// Estimate-cache counters for the whole run (all zeros when
    /// `DseOptions::caching` is off). Hits measure how many virtual HLS
    /// runs the memo table absorbed across the probe pass, seeds, and
    /// every partition.
    pub cache: CacheStats,
    /// Design points the legality pre-screen rejected before the
    /// estimator ran (0 when `DseOptions::prescreen` is off). Equals
    /// `cache.pruned_illegal`, surfaced here for reporting.
    pub pruned_illegal: u64,
    /// Per-rule pre-screen hit counts as `(lint code, hits)`, in stable
    /// rule order.
    pub pruned_by_rule: Vec<(String, u64)>,
}

impl DseOutcome {
    /// Best objective in ms (`+inf` if nothing was feasible).
    pub fn best_value(&self) -> f64 {
        self.best
            .as_ref()
            .map(|(_, e)| e.time_ms)
            .unwrap_or(f64::INFINITY)
    }

    /// Best objective known at a given virtual minute.
    pub fn best_at_minute(&self, minute: f64) -> f64 {
        let mut best = f64::INFINITY;
        for &(m, v) in &self.convergence {
            if m <= minute {
                best = v;
            } else {
                break;
            }
        }
        best
    }
}

fn make_stopper(kind: StoppingKind, n_params: usize) -> Box<dyn StoppingCriterion + Send> {
    match kind {
        StoppingKind::TimeLimit => Box::new(TimeLimitOnly),
        StoppingKind::Trivial { k } => Box::new(NoImprovement::new(k)),
        StoppingKind::Entropy { theta, n } => Box::new(EntropyStop::new(n_params, theta, n)),
    }
}

/// A partition trajectory cut down to the budget its virtual worker had
/// left. Because a [`TuningRun`] reads its budget only as a stopping
/// condition, the prefix of a full-budget trajectory *is* the trajectory
/// of a shorter-budget run — iteration for iteration, with exactly the
/// tuner's deadline-kill semantics at the cut (the
/// `truncation_equals_live_run_at_shorter_budget` property test pins the
/// equivalence down event for event).
struct Truncated {
    elapsed_minutes: f64,
    evaluations: u64,
    /// Evaluations of the final included batch whose completion overran
    /// the budget — harvested but clamped, as in the live run.
    killed_evals: u64,
    /// Every trace event of the prefix, minutes clamped to the budget.
    events: Vec<TraceEvent>,
    /// Per-technique counters over the prefix.
    techniques: Vec<TechniqueStats>,
    best_value: f64,
    reason: StopReason,
}

/// `full_budget` is the budget `out` was produced under; it disambiguates
/// the one case the clamped trace cannot answer alone (truncating at the
/// full budget itself, where the overrunning batch's raw minutes were
/// already clamped by the live run).
fn truncate_to_budget(out: &TuningOutcome, budget: f64, full_budget: f64) -> Truncated {
    let trace = &out.trace;
    let mut clock = 0.0f64;
    let mut included = 0usize;
    // Replay whole iterations while the clock is under budget — the live
    // run's loop condition. Every event of an iteration carries the same
    // batch-completion minute (the BatchClock stamp), so any member — we
    // read the last — gives the clock after the batch.
    while included < trace.len() && clock < budget {
        let iter = trace[included].iteration;
        let mut end = included;
        while end < trace.len() && trace[end].iteration == iter {
            end += 1;
        }
        clock = trace[end - 1].minute;
        included = end;
    }
    let killed_evals = if included == trace.len() && budget >= full_budget {
        // Identity truncation: the live run's own kill count applies
        // (its overrunning minutes were clamped to `full_budget`, so
        // counting `> budget` here would miss them).
        out.killed_evals
    } else {
        trace[..included]
            .iter()
            .filter(|e| e.minute > budget)
            .count() as u64
    };
    let mut techniques = TechniqueTable::new();
    let events: Vec<TraceEvent> = trace[..included]
        .iter()
        .map(|e| {
            techniques.record(&e.technique, e.value, e.improved);
            TraceEvent {
                minute: e.minute.min(budget),
                ..e.clone()
            }
        })
        .collect();
    let best_value = events
        .iter()
        .map(|e| e.value)
        .filter(|v| v.is_finite())
        .fold(f64::INFINITY, f64::min);
    let reason = if included < trace.len() || clock >= budget {
        StopReason::TimeLimit
    } else {
        out.reason
    };
    Truncated {
        elapsed_minutes: clock.min(budget),
        evaluations: included as u64,
        killed_evals,
        events,
        techniques: techniques.into_rows(),
        best_value,
        reason,
    }
}

/// Runs a DSE for one kernel and returns the merged outcome.
///
/// Deterministic given `opts.rng_seed` — independent of `workers` as a
/// thread pool (only its virtual core count matters), of `eval_threads`,
/// of `caching`, and of OS scheduling: real threads only decide *when*
/// each partition's deterministic trajectory is computed, never what it
/// contains, and the FCFS schedule over virtual workers is simulated at
/// merge time from per-partition virtual durations.
pub fn run_dse(summary: &KernelSummary, estimator: &Estimator, opts: &DseOptions) -> DseOutcome {
    run_dse_traced(summary, estimator, opts, Arc::new(NullSink))
}

/// [`run_dse`] with a structured-event sink attached (flight recording).
///
/// The sink observes two time domains: evaluation/partition/run events
/// are re-emitted at merge time from the *virtual* FCFS schedule, in
/// partition index order with globalized minutes — deterministic given
/// `opts.rng_seed` — while batched cache-stats events stream host-side
/// from the shared engine at iteration boundaries (their flush split is
/// OS-dependent; the totals are not). Emission never influences the
/// outcome: `run_dse` is this function with a [`NullSink`].
pub fn run_dse_traced(
    summary: &KernelSummary,
    estimator: &Estimator,
    opts: &DseOptions,
    sink: Arc<dyn TraceSink>,
) -> DseOutcome {
    run_dse_profiled(summary, estimator, opts, sink, &Profiler::disabled())
}

/// [`run_dse_traced`] with host-side profiling attached.
///
/// With an enabled profiler the driver records a span forest over the
/// whole exploration — a `dse` root lane with
/// `space_identification` / `partition` / `seeds` / `explore` / `merge`
/// stage children, a `tune` span per partition on each pool thread's
/// lane, and the evaluator's `batch`/`worker` shape from
/// [`ThreadedObjective`] — and feeds the metrics registry
/// (`eval_ns`, `bandit_pull_ns`, cache probe/lock-wait, …).
///
/// Profiling is strictly observational: with the disabled profiler every
/// instrumentation point is one branch, and the returned [`DseOutcome`]
/// is bit-identical either way (`outcome_invariant_to_profiling` pins
/// this).
pub fn run_dse_profiled(
    summary: &KernelSummary,
    estimator: &Estimator,
    opts: &DseOptions,
    sink: Arc<dyn TraceSink>,
    profiler: &Profiler,
) -> DseOutcome {
    let mut lane = profiler.lane();
    let dse_span = lane.open("dse");
    let si_span = lane.open("space_identification");
    let ds = DesignSpace::build(summary);
    lane.close(si_span);
    let engine = {
        let mut e = EvalEngine::new(summary, estimator);
        e.set_caching(opts.caching);
        e.set_prescreen(opts.prescreen || opts.dataflow_prescreen);
        e.set_sink(Some(sink.clone()));
        e.set_profiler(profiler);
        e
    };
    let measure = |cfg: &s2fa_tuner::Config| -> Measurement {
        let est = engine.evaluate(&ds.decode(cfg));
        Measurement {
            value: est.objective(),
            minutes: est.hls_minutes,
        }
    };

    // 1. Partition (or not). The probe pass warms the shared cache.
    let part_span = lane.open("partition");
    let (subspaces, rule_descriptions) = if opts.partition {
        let tree = opts
            .partitioner
            .clone()
            .partition(&ds, summary, &mut |cfg| measure(cfg).value);
        (tree.leaves(), tree.describe())
    } else {
        (vec![ds.space().clone()], vec!["(entire space)".to_string()])
    };
    engine.flush_cache_stats();
    lane.close(part_span);

    // 2. Seeds per partition.
    let seeds_span = lane.open("seeds");
    let mut rng = SmallRng::seed_from_u64(opts.rng_seed ^ 0x9E3779B97F4A7C15);
    let seeds_for =
        |space: &s2fa_tuner::SearchSpace, rng: &mut SmallRng| -> Vec<s2fa_tuner::Config> {
            if opts.seeds {
                let mut perf = ds.encode(&DesignConfig::perf_seed(summary));
                let mut area = ds.encode(&DesignConfig::area_seed(summary));
                space.clamp(&mut perf);
                space.clamp(&mut area);
                vec![perf, area]
            } else {
                vec![space.random(rng)]
            }
        };

    struct Job {
        index: usize,
        space: s2fa_tuner::SearchSpace,
        seeds: Vec<s2fa_tuner::Config>,
    }
    let jobs: Vec<Job> = subspaces
        .into_iter()
        .enumerate()
        .map(|(i, space)| {
            let seeds = seeds_for(&space, &mut rng);
            Job {
                index: i,
                space,
                seeds,
            }
        })
        .collect();
    sink.emit(&Event::RunStart {
        kernel: summary.name.clone(),
        budget_minutes: opts.budget_minutes,
        partitions: jobs.len() as u64,
    });

    // Statically-dead share of each partition, from a deterministic side
    // sample (diagnostic; independent of both the search RNG and the
    // engine's counters).
    let oracle = Legality::new(summary, estimator);
    let dead_fractions: Vec<f64> = jobs
        .iter()
        .map(|job| {
            let seed = (opts.rng_seed ^ 0xDEAD_F7AC)
                .wrapping_add((job.index as u64).wrapping_mul(0x9E3779B97F4A7C15));
            ds.dead_fraction(&job.space, &oracle, DEAD_FRACTION_SAMPLES, seed)
        })
        .collect();
    lane.close(seeds_span);

    let explore_span = lane.open("explore");
    // 3. Explore every partition at full budget on a work-stealing pool:
    // threads pull the next unstarted partition first-come-first-served.
    // Each partition's trajectory depends only on its own RNG stream and
    // the shared (order-insensitive) cache, so pull order is irrelevant.
    //
    // One persistent evaluation pool serves every partition thread for the
    // whole run: workers are spawned here once and each submitting thread
    // helps execute its own job, so `eval_threads` equals total executors.
    let eval_pool = (opts.eval_threads > 1)
        .then(|| Arc::new(WorkerPool::new(opts.eval_threads.saturating_sub(1))));
    let pool = opts.workers.max(1).min(jobs.len().max(1));
    let cursor = AtomicUsize::new(0);
    let full: Vec<TuningOutcome> = {
        let mut slots: Vec<Option<TuningOutcome>> = (0..jobs.len()).map(|_| None).collect();
        let chunks: Vec<Vec<(usize, TuningOutcome)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..pool)
                .map(|_| {
                    let cursor = &cursor;
                    let jobs = &jobs;
                    let engine = &engine;
                    let ds = &ds;
                    let eval_pool = &eval_pool;
                    scope.spawn(move || {
                        let eval = |cfg: &s2fa_tuner::Config| -> Measurement {
                            let est = engine.evaluate(&ds.decode(cfg));
                            Measurement {
                                value: est.objective(),
                                minutes: est.hls_minutes,
                            }
                        };
                        let mut obj = ThreadedObjective::new(&eval, opts.eval_threads)
                            .with_chunk(opts.eval_chunk)
                            .with_profiler(profiler);
                        if let Some(pool) = &eval_pool {
                            obj = obj.with_pool(Arc::clone(pool));
                        }
                        let mut pool_lane = profiler.lane();
                        let mut out = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= jobs.len() {
                                break;
                            }
                            let job = &jobs[i];
                            let mut stopper = make_stopper(opts.stopping, job.space.params().len());
                            let run = TuningRun::new(
                                job.space.clone(),
                                TuningOptions {
                                    budget_minutes: opts.budget_minutes,
                                    parallel_evals: opts.parallel_evals,
                                    seeds: job.seeds.clone(),
                                    rng_seed: opts.rng_seed.wrapping_add(job.index as u64 * 7919),
                                    max_evaluations: 1_000_000,
                                },
                            )
                            .with_profiler(profiler);
                            let tune_span = pool_lane.open("tune");
                            out.push((i, run.run(&mut obj, stopper.as_mut())));
                            pool_lane.close(tune_span);
                            engine.flush_cache_stats();
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        for (i, outcome) in chunks.into_iter().flatten() {
            slots[i] = Some(outcome);
        }
        slots
            .into_iter()
            .map(|o| o.expect("every partition explored"))
            .collect()
    };
    lane.close(explore_span);

    // Fold the evaluation pool's utilization counters into the metrics
    // registry so the flight-recorder report (`s2fa_cli --metrics`) can
    // show how the batch work split between workers and submitters.
    if let (Some(pool), Some(metrics)) = (&eval_pool, profiler.metrics()) {
        let stats = pool.stats();
        metrics.counter("pool_jobs").add(stats.jobs);
        metrics.counter("pool_chunks").add(stats.chunks);
        metrics
            .counter("pool_worker_chunks")
            .add(stats.worker_chunks);
        metrics.gauge("pool_workers").set(stats.workers as i64);
    }

    let merge_span = lane.open("merge");
    // 4. Simulate the virtual FCFS schedule and merge. Partition i goes to
    // the virtual worker that frees first (lowest index on ties) and gets
    // whatever budget that worker has left; its full-budget trajectory is
    // truncated to that prefix.
    let n_workers = opts.workers.max(1);
    let mut worker_clock = vec![0.0f64; n_workers];
    let mut per_partition = Vec::new();
    let mut all_events: Vec<(f64, f64)> = Vec::new();
    let mut techniques = TechniqueTable::new();
    let mut total_evals = 0u64;
    let mut killed_evals = 0u64;
    let mut makespan = 0.0f64;
    // (value, job, eval index) of the global best — strict `<` keeps the
    // earliest minimum, matching the tuner's incumbent rule.
    let mut best_key: Option<(f64, usize, usize)> = None;
    for (j, (job, outcome)) in jobs.iter().zip(&full).enumerate() {
        let mut w = 0usize;
        for k in 1..worker_clock.len() {
            if worker_clock[k] < worker_clock[w] {
                w = k;
            }
        }
        let start = worker_clock[w];
        let budget = opts.budget_minutes - start;
        if budget <= 0.0 {
            // Every virtual core is saturated to the deadline; this
            // partition (and all later ones) never started.
            continue;
        }
        let t = truncate_to_budget(outcome, budget, opts.budget_minutes);
        worker_clock[w] = start + t.elapsed_minutes;
        makespan = makespan.max(worker_clock[w]);
        total_evals += t.evaluations;
        killed_evals += t.killed_evals;
        techniques.merge(&t.techniques);
        sink.emit(&Event::PartitionStart {
            partition: job.index as u64,
            worker: w as u64,
            minute: start,
        });
        for e in &t.events {
            sink.emit(&Event::Eval {
                minute: start + e.minute,
                partition: Some(job.index as u64),
                iteration: e.iteration,
                technique: e.technique.clone(),
                value: e.value,
                best_value: e.best_value,
                improved: e.improved,
            });
            if e.value.is_finite() {
                all_events.push((start + e.minute, e.value));
            }
        }
        sink.emit(&Event::PartitionStop {
            partition: job.index as u64,
            worker: w as u64,
            minute: start + t.elapsed_minutes,
            evaluations: t.evaluations,
            killed_evals: t.killed_evals,
            best_value: t.best_value,
            reason: format!("{:?}", t.reason),
        });
        for (k, e) in outcome.history.evaluations()[..t.evaluations as usize]
            .iter()
            .enumerate()
        {
            let v = e.measurement.value;
            if v.is_finite() && best_key.is_none_or(|(bv, _, _)| v < bv) {
                best_key = Some((v, j, k));
            }
        }
        per_partition.push(PartitionRun {
            index: job.index,
            rules: rule_descriptions
                .get(job.index)
                .cloned()
                .unwrap_or_default(),
            worker: w,
            start_minute: start,
            elapsed_minutes: t.elapsed_minutes,
            evaluations: t.evaluations,
            killed_evals: t.killed_evals,
            best_value: t.best_value,
            reason: t.reason,
            dead_fraction: dead_fractions[job.index],
        });
    }
    per_partition.sort_by_key(|p| p.index);
    all_events.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut convergence = Vec::with_capacity(all_events.len());
    let mut running = f64::INFINITY;
    for (m, v) in all_events {
        if v < running {
            running = v;
            convergence.push((m, running));
        }
    }

    engine.flush_cache_stats();
    sink.emit(&Event::RunStop {
        minute: makespan,
        evaluations: total_evals,
        reason: "merged".to_string(),
    });

    // Snapshot the counters before re-deriving the winning estimate so the
    // stats describe the search itself.
    let cache = engine.cache_stats();
    let pruned_by_rule = engine.prune_counts();
    let best = best_key.map(|(_, j, k)| {
        let cfg = &full[j].history.evaluations()[k].config;
        let dc = ds.decode(cfg);
        let est = engine.evaluate(&dc);
        (dc, est)
    });
    lane.close(merge_span);
    lane.close(dse_span);
    drop(lane);

    DseOutcome {
        best,
        convergence,
        elapsed_minutes: makespan,
        total_evaluations: total_evals,
        partitions: jobs.len(),
        per_partition,
        techniques: techniques.into_rows(),
        killed_evals,
        pruned_illegal: cache.pruned_illegal,
        cache,
        pruned_by_rule,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_hlsir::{
        Access, BufferDir, BufferInfo, CarriedDep, LoopId, LoopInfo, OpCounts, Stride,
    };

    fn summary() -> KernelSummary {
        let mut inner_ops = OpCounts::new();
        inner_ops.fadd = 1;
        inner_ops.fmul = 1;
        inner_ops.mem_read = 2;
        let mut chain = OpCounts::new();
        chain.fadd = 1;
        let mut outer_ops = OpCounts::new();
        outer_ops.mem_write = 1;
        KernelSummary {
            name: "dot".into(),
            loops: vec![
                LoopInfo {
                    id: LoopId(0),
                    var: "t".into(),
                    trip_count: 1024,
                    depth: 0,
                    parent: None,
                    children: vec![LoopId(1)],
                    body_ops: outer_ops,
                    accesses: vec![Access {
                        buffer: "out_1".into(),
                        write: true,
                        stride: Stride::Unit,
                    }],
                    carried: None,
                },
                LoopInfo {
                    id: LoopId(1),
                    var: "j".into(),
                    trip_count: 64,
                    depth: 1,
                    parent: Some(LoopId(0)),
                    children: vec![],
                    body_ops: inner_ops,
                    accesses: vec![
                        Access {
                            buffer: "in_1".into(),
                            write: false,
                            stride: Stride::Unit,
                        },
                        Access {
                            buffer: "w".into(),
                            write: false,
                            stride: Stride::Zero,
                        },
                    ],
                    carried: Some(CarriedDep {
                        via: "s".into(),
                        chain,
                        reducible: true,
                    }),
                },
            ],
            buffers: vec![
                BufferInfo {
                    name: "in_1".into(),
                    elem_bits: 32,
                    len: 64,
                    dir: BufferDir::In,
                    broadcast: false,
                },
                BufferInfo {
                    name: "w".into(),
                    elem_bits: 32,
                    len: 64,
                    dir: BufferDir::In,
                    broadcast: false,
                },
                BufferInfo {
                    name: "out_1".into(),
                    elem_bits: 32,
                    len: 1,
                    dir: BufferDir::Out,
                    broadcast: false,
                },
            ],
            task_loop: LoopId(0),
            tasks_hint: 1024,
            dataflow: None,
        }
    }

    #[test]
    fn s2fa_run_produces_feasible_best() {
        let s = summary();
        let est = Estimator::new();
        let mut opts = DseOptions::s2fa();
        opts.budget_minutes = 120.0;
        let out = run_dse(&s, &est, &opts);
        let (_, e) = out.best.as_ref().expect("found a design");
        assert!(e.is_feasible());
        assert!(out.total_evaluations > 10);
        assert!(out.partitions >= 2);
        assert!(out.elapsed_minutes <= 120.0 + 1e-9);
        // convergence is non-increasing
        for w in out.convergence.windows(2) {
            assert!(w[1].1 <= w[0].1);
            assert!(w[1].0 >= w[0].0);
        }
    }

    #[test]
    fn s2fa_beats_or_matches_vanilla_in_time_to_quality() {
        let s = summary();
        let est = Estimator::new();
        let mut so = DseOptions::s2fa();
        so.budget_minutes = 240.0;
        let mut vo = vanilla_options();
        vo.budget_minutes = 240.0;
        let s2 = run_dse(&s, &est, &so);
        let va = run_dse(&s, &est, &vo);
        assert!(s2.best_value().is_finite());
        assert!(va.best_value().is_finite());
        // S2FA should terminate earlier (entropy stop) and reach at least
        // vanilla-comparable quality.
        assert!(
            s2.elapsed_minutes <= va.elapsed_minutes,
            "s2fa {} vs vanilla {}",
            s2.elapsed_minutes,
            va.elapsed_minutes
        );
        assert!(
            s2.best_value() <= va.best_value() * 1.6,
            "s2fa {} vs vanilla {}",
            s2.best_value(),
            va.best_value()
        );
    }

    #[test]
    fn seed_generation_guarantees_a_feasible_start() {
        // §4.3.2: "With the conservative seed as a starting point, the
        // learning algorithm is guaranteed to start searching in the
        // feasible region" — the first batch of a seeded run always
        // contains a feasible (finite) point.
        let s = summary();
        let est = Estimator::new();
        let mut with = DseOptions::s2fa();
        with.partition = false;
        with.budget_minutes = 30.0;
        let w = run_dse(&s, &est, &with);
        let first_batch_feasible = w.per_partition.iter().all(|p| p.best_value.is_finite());
        assert!(first_batch_feasible);
        // and the seeded best at the first instant is already defined
        assert!(w.convergence.first().map(|&(_, v)| v).unwrap().is_finite());
    }

    #[test]
    fn deterministic_across_runs() {
        let s = summary();
        let est = Estimator::new();
        let mut opts = DseOptions::s2fa();
        opts.budget_minutes = 60.0;
        let a = run_dse(&s, &est, &opts);
        let b = run_dse(&s, &est, &opts);
        assert_eq!(a.best_value(), b.best_value());
        assert_eq!(a.total_evaluations, b.total_evaluations);
        assert_eq!(a.convergence, b.convergence);
    }

    /// Everything about an outcome except the cache counters, in a
    /// comparable shape.
    #[allow(clippy::type_complexity)]
    fn outcome_key(
        out: &DseOutcome,
    ) -> (
        Option<(DesignConfig, Estimate)>,
        Vec<(f64, f64)>,
        f64,
        u64,
        u64,
        usize,
        Vec<TechniqueStats>,
        Vec<(usize, usize, f64, f64, u64, u64, f64, String)>,
    ) {
        (
            out.best.clone(),
            out.convergence.clone(),
            out.elapsed_minutes,
            out.total_evaluations,
            out.killed_evals,
            out.partitions,
            out.techniques.clone(),
            out.per_partition
                .iter()
                .map(|p| {
                    (
                        p.index,
                        p.worker,
                        p.start_minute,
                        p.elapsed_minutes,
                        p.evaluations,
                        p.killed_evals,
                        p.best_value,
                        format!("{:?}", p.reason),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn outcome_invariant_to_eval_threads_and_caching() {
        // `eval_threads` and `caching` are pure wall-clock knobs: the
        // virtual schedule, RNG streams, and hence the whole outcome must
        // be bit-identical across every combination — including under the
        // work-stealing pool, whose real execution order varies run to run.
        let s = summary();
        let est = Estimator::new();
        let mut base = DseOptions::s2fa();
        base.budget_minutes = 60.0;
        let reference = run_dse(&s, &est, &base);
        let key = outcome_key(&reference);
        // cache-on runs genuinely exercise the memo table (probe + seeds
        // collide across partitions)
        assert!(reference.cache.hits > 0, "expected cache hits");
        for (threads, caching) in [(1, true), (8, false), (1, false), (3, true)] {
            let mut opts = base.clone();
            opts.eval_threads = threads;
            opts.caching = caching;
            let out = run_dse(&s, &est, &opts);
            assert_eq!(
                outcome_key(&out),
                key,
                "outcome changed at eval_threads={threads} caching={caching}"
            );
            if !caching {
                assert_eq!(out.cache, CacheStats::default());
            }
        }
    }

    #[test]
    fn trivial_stop_runs_longer_than_entropy() {
        let s = summary();
        let est = Estimator::new();
        let mut ent = DseOptions::s2fa();
        ent.budget_minutes = 240.0;
        let mut triv = ent.clone();
        triv.stopping = StoppingKind::Trivial { k: 10 };
        let e = run_dse(&s, &est, &ent);
        let t = run_dse(&s, &est, &triv);
        assert!(
            e.elapsed_minutes <= t.elapsed_minutes * 1.05,
            "entropy {} vs trivial {}",
            e.elapsed_minutes,
            t.elapsed_minutes
        );
    }

    #[test]
    fn best_at_minute_interpolates() {
        let out = DseOutcome {
            best: None,
            convergence: vec![(10.0, 100.0), (50.0, 40.0)],
            elapsed_minutes: 60.0,
            total_evaluations: 2,
            partitions: 1,
            per_partition: vec![],
            techniques: vec![],
            killed_evals: 0,
            cache: CacheStats::default(),
            pruned_illegal: 0,
            pruned_by_rule: vec![],
        };
        assert!(out.best_at_minute(5.0).is_infinite());
        assert_eq!(out.best_at_minute(10.0), 100.0);
        assert_eq!(out.best_at_minute(30.0), 100.0);
        assert_eq!(out.best_at_minute(55.0), 40.0);
    }

    /// The merge-layer contract: the truncated prefix of a full-budget
    /// trajectory is *the* trajectory of a live run under the shorter
    /// budget — event for event, counter for counter, including the
    /// deadline-kill bookkeeping at the cut.
    #[test]
    fn truncation_equals_live_run_at_shorter_budget() {
        use s2fa_tuner::{Config, ParamDef, ParamKind, SearchSpace};
        let space = || {
            SearchSpace::new(vec![
                ParamDef::new("a", ParamKind::IntRange { lo: 0, hi: 63 }),
                ParamDef::new("b", ParamKind::IntRange { lo: 0, hi: 63 }),
            ])
        };
        // Jagged per-config minutes: batches straddle budgets unevenly,
        // which is exactly where prefix-max stamping used to lie.
        let objective = |c: &Config| {
            let v = (c[0] as f64 - 40.0).powi(2) + (c[1] as f64 - 9.0).powi(2) + 1.0;
            Measurement::new(v, 2.0 + (c[0] % 7) as f64)
        };
        let full_budget = 300.0;
        for rng_seed in [11u64, 99, 2018] {
            let mk = |budget: f64| {
                let mut obj = objective;
                TuningRun::new(
                    space(),
                    TuningOptions {
                        budget_minutes: budget,
                        parallel_evals: 4,
                        seeds: vec![vec![40, 9], vec![0, 0]],
                        rng_seed,
                        max_evaluations: 1_000_000,
                    },
                )
                .run(&mut obj, &mut NoImprovement::new(40))
            };
            let full = mk(full_budget);
            for budget in [5.0, 17.0, 42.0, 61.5, 120.0, 213.0, full_budget] {
                let live = mk(budget);
                let t = truncate_to_budget(&full, budget, full_budget);
                assert_eq!(
                    t.events, live.trace,
                    "trace diverged at seed {rng_seed} budget {budget}"
                );
                assert_eq!(t.evaluations, live.evaluations);
                assert_eq!(t.killed_evals, live.killed_evals);
                assert_eq!(t.elapsed_minutes, live.elapsed_minutes);
                assert_eq!(t.reason, live.reason);
                assert_eq!(t.best_value, live.best_value());
                assert_eq!(t.techniques, live.technique_stats);
            }
        }
    }

    #[test]
    fn traced_run_streams_the_virtual_schedule() {
        let s = summary();
        let est = Estimator::new();
        let mut opts = DseOptions::s2fa();
        opts.budget_minutes = 60.0;
        let ring = Arc::new(s2fa_trace::RingSink::new(1 << 20));
        let out = run_dse_traced(&s, &est, &opts, ring.clone());
        // emission is observational: the traced outcome matches run_dse
        let plain = run_dse(&s, &est, &opts);
        assert_eq!(outcome_key(&out), outcome_key(&plain));
        let evs = ring.events();
        let count = |k: &str| evs.iter().filter(|e| e.kind() == k).count() as u64;
        assert_eq!(count("run_start"), 1);
        assert_eq!(count("run_stop"), 1);
        assert_eq!(count("partition_start"), out.per_partition.len() as u64);
        assert_eq!(count("partition_stop"), out.per_partition.len() as u64);
        assert_eq!(count("eval"), out.total_evaluations);
        // cache activity arrives as batched deltas whose totals match the
        // engine's own counters, not as per-lookup events
        let (hits, misses) = evs.iter().fold((0u64, 0u64), |acc, e| match e {
            Event::CacheStats { hits, misses, .. } => (acc.0 + hits, acc.1 + misses),
            _ => acc,
        });
        assert!(count("cache_stats") > 0, "deltas should have been flushed");
        assert!(hits > 0, "shared cache should see hits");
        assert!(misses > 0);
        assert_eq!(hits, out.cache.hits, "flushed deltas must sum to totals");
        assert_eq!(misses, out.cache.misses);
        // each partition's eval minutes are monotone non-decreasing on
        // the virtual timeline
        for p in &out.per_partition {
            let minutes: Vec<f64> = evs
                .iter()
                .filter_map(|e| match e {
                    Event::Eval {
                        minute,
                        partition: Some(pi),
                        ..
                    } if *pi == p.index as u64 => Some(*minute),
                    _ => None,
                })
                .collect();
            assert_eq!(minutes.len() as u64, p.evaluations);
            for w in minutes.windows(2) {
                assert!(w[1] >= w[0], "partition {} went backwards", p.index);
            }
        }
    }

    /// Profiling is observational: span recording and metrics feeding must
    /// not perturb the search. Bit-identical outcomes, enabled vs disabled.
    #[test]
    fn outcome_invariant_to_profiling() {
        let s = summary();
        let est = Estimator::new();
        let mut opts = DseOptions::s2fa();
        opts.budget_minutes = 60.0;
        let plain = run_dse(&s, &est, &opts);
        let profiler = Profiler::enabled();
        let profiled = run_dse_profiled(&s, &est, &opts, Arc::new(NullSink), &profiler);
        assert_eq!(outcome_key(&plain), outcome_key(&profiled));

        // and the recorded span forest is well-formed with the driver's
        // stage children present under the `dse` root
        let spans = profiler.take_spans();
        s2fa_obs::verify_spans(&spans).expect("span forest well-formed");
        let names: Vec<&str> = spans.iter().map(|r| r.name.as_str()).collect();
        for stage in [
            "dse",
            "space_identification",
            "partition",
            "seeds",
            "explore",
            "merge",
            "tune",
            "batch",
        ] {
            assert!(names.contains(&stage), "missing span {stage:?}");
        }
        // metrics flowed from the hot paths
        let snap = profiler.metrics().unwrap().snapshot();
        assert!(snap.histograms["eval_ns"].count > 0);
        assert!(snap.histograms["bandit_pull_ns"].count > 0);
        assert!(snap.histograms["cache_probe_ns"].count > 0);
    }

    #[test]
    fn technique_counters_account_for_every_evaluation() {
        let s = summary();
        let est = Estimator::new();
        let mut opts = DseOptions::s2fa();
        opts.budget_minutes = 120.0;
        let out = run_dse(&s, &est, &opts);
        let sum: u64 = out.techniques.iter().map(|t| t.evals).sum();
        assert_eq!(sum, out.total_evaluations);
        assert!(out.techniques.iter().any(|t| t.technique == "seed"));
        let killed: u64 = out.per_partition.iter().map(|p| p.killed_evals).sum();
        assert_eq!(killed, out.killed_evals);
        // rows arrive sorted regardless of partition exploration order
        for w in out.techniques.windows(2) {
            assert!(w[0].technique < w[1].technique);
        }
        // the best objective seen by any technique is the best of any
        // partition (both live in objective-value space)
        let tech_best = out
            .techniques
            .iter()
            .map(|t| t.best_value)
            .fold(f64::INFINITY, f64::min);
        let part_best = out
            .per_partition
            .iter()
            .map(|p| p.best_value)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(tech_best, part_best);
    }
}
