//! The parallel DSE driver (paper Fig. 2).
//!
//! Runs S2FA's fast DSE flow: identify the space, partition it with the
//! decision tree, generate two seeds per partition, and explore partitions
//! in parallel with a first-come-first-serve schedule over the worker
//! cores, each partition running the OpenTuner-substitute loop under the
//! Shannon-entropy stopping criterion. Switching the three optimizations
//! off ([`vanilla_options`]) reproduces the Fig. 3 baseline: one space, one
//! random seed, top-8 parallel evaluation, and a fixed 4-hour time limit.

use crate::entropy::EntropyStop;
use crate::partition::Partitioner;
use crate::space::DesignSpace;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use s2fa_hlsir::KernelSummary;
use s2fa_hlssim::{Estimate, Estimator};
use s2fa_merlin::DesignConfig;
use s2fa_tuner::{
    Measurement, NoImprovement, StopReason, StoppingCriterion, TimeLimitOnly, TuningOptions,
    TuningOutcome, TuningRun,
};

/// Which early-stopping criterion a DSE run uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StoppingKind {
    /// Vanilla: only the wall-clock budget (4 h in the paper).
    TimeLimit,
    /// The "trivial criteria": stop after `k` consecutive non-improving
    /// points (the paper evaluates `k = 10`).
    Trivial {
        /// Non-improving streak length that terminates the run.
        k: usize,
    },
    /// S2FA's Shannon-entropy criterion (Eq. 2).
    Entropy {
        /// Stability threshold θ on `|H(D_i) − H(D_{i−1})|`.
        theta: f64,
        /// Consecutive stable iterations required.
        n: usize,
    },
}

/// Options for one DSE run.
#[derive(Debug, Clone)]
pub struct DseOptions {
    /// Enable decision-tree space partitioning (§4.3.1).
    pub partition: bool,
    /// Enable performance/area seed generation (§4.3.2).
    pub seeds: bool,
    /// Early-stopping criterion (§4.3.3).
    pub stopping: StoppingKind,
    /// Worker cores (8 on the f1.2xlarge host).
    pub workers: usize,
    /// Candidates evaluated in parallel *within* one tuning run (vanilla
    /// OpenTuner uses the 8 cores this way; S2FA uses 1 because its cores
    /// run partitions).
    pub parallel_evals: usize,
    /// Virtual wall-clock budget in minutes.
    pub budget_minutes: f64,
    /// RNG seed (everything downstream derives from it).
    pub rng_seed: u64,
    /// Partitioner settings.
    pub partitioner: Partitioner,
}

impl Default for DseOptions {
    fn default() -> Self {
        DseOptions::s2fa()
    }
}

impl DseOptions {
    /// The full S2FA flow: partition + seeds + entropy stopping, 8 workers,
    /// 4-hour cap.
    pub fn s2fa() -> DseOptions {
        DseOptions {
            partition: true,
            seeds: true,
            stopping: StoppingKind::Entropy { theta: 0.10, n: 3 },
            workers: 8,
            parallel_evals: 1,
            budget_minutes: 240.0,
            rng_seed: 2018,
            partitioner: Partitioner::default(),
        }
    }
}

/// The Fig. 3 baseline: vanilla OpenTuner on the same 8 cores.
pub fn vanilla_options() -> DseOptions {
    DseOptions {
        partition: false,
        seeds: false,
        stopping: StoppingKind::TimeLimit,
        workers: 8,
        parallel_evals: 8,
        budget_minutes: 240.0,
        rng_seed: 2018,
        partitioner: Partitioner::default(),
    }
}

/// Per-partition result summary.
#[derive(Debug, Clone)]
pub struct PartitionRun {
    /// Partition index (tree leaf order).
    pub index: usize,
    /// The rule path describing the partition.
    pub rules: String,
    /// Worker core it ran on.
    pub worker: usize,
    /// Virtual minute the partition started exploring.
    pub start_minute: f64,
    /// Minutes the partition's exploration took.
    pub elapsed_minutes: f64,
    /// Evaluations spent.
    pub evaluations: u64,
    /// Best objective found in the partition (ms; `+inf` if none).
    pub best_value: f64,
    /// Why the partition's run ended.
    pub reason: StopReason,
}

/// Result of a full DSE run.
#[derive(Debug, Clone)]
pub struct DseOutcome {
    /// Best design configuration found and its estimate.
    pub best: Option<(DesignConfig, Estimate)>,
    /// Global convergence trace: (virtual minute, best-so-far objective in
    /// ms) across all partitions, non-increasing.
    pub convergence: Vec<(f64, f64)>,
    /// Makespan: the minute the last partition finished.
    pub elapsed_minutes: f64,
    /// Total design points evaluated.
    pub total_evaluations: u64,
    /// Number of partitions explored.
    pub partitions: usize,
    /// Per-partition details.
    pub per_partition: Vec<PartitionRun>,
}

impl DseOutcome {
    /// Best objective in ms (`+inf` if nothing was feasible).
    pub fn best_value(&self) -> f64 {
        self.best
            .as_ref()
            .map(|(_, e)| e.time_ms)
            .unwrap_or(f64::INFINITY)
    }

    /// Best objective known at a given virtual minute.
    pub fn best_at_minute(&self, minute: f64) -> f64 {
        let mut best = f64::INFINITY;
        for &(m, v) in &self.convergence {
            if m <= minute {
                best = v;
            } else {
                break;
            }
        }
        best
    }
}

fn make_stopper(kind: StoppingKind, n_params: usize) -> Box<dyn StoppingCriterion + Send> {
    match kind {
        StoppingKind::TimeLimit => Box::new(TimeLimitOnly),
        StoppingKind::Trivial { k } => Box::new(NoImprovement::new(k)),
        StoppingKind::Entropy { theta, n } => Box::new(EntropyStop::new(n_params, theta, n)),
    }
}

/// Runs a DSE for one kernel and returns the merged outcome.
///
/// Deterministic given `opts.rng_seed`: partitions run on real threads but
/// every partition's virtual timeline is independent, and partitions are
/// statically assigned to workers round-robin (the deterministic
/// realization of the FCFS schedule in Fig. 2).
pub fn run_dse(summary: &KernelSummary, estimator: &Estimator, opts: &DseOptions) -> DseOutcome {
    let ds = DesignSpace::build(summary);
    let objective = |cfg: &s2fa_tuner::Config| -> (Measurement, DesignConfig, Estimate) {
        let dc = ds.decode(cfg);
        let est = estimator.evaluate(summary, &dc);
        (
            Measurement {
                value: est.objective(),
                minutes: est.hls_minutes,
            },
            dc,
            est,
        )
    };

    // 1. Partition (or not).
    let (subspaces, rule_descriptions) = if opts.partition {
        let tree = opts
            .partitioner
            .clone()
            .partition(&ds, summary, &mut |cfg| objective(cfg).0.value);
        (tree.leaves(), tree.describe())
    } else {
        (vec![ds.space().clone()], vec!["(entire space)".to_string()])
    };

    // 2. Seeds per partition.
    let mut rng = SmallRng::seed_from_u64(opts.rng_seed ^ 0x9E3779B97F4A7C15);
    let seeds_for =
        |space: &s2fa_tuner::SearchSpace, rng: &mut SmallRng| -> Vec<s2fa_tuner::Config> {
            if opts.seeds {
                let mut perf = ds.encode(&DesignConfig::perf_seed(summary));
                let mut area = ds.encode(&DesignConfig::area_seed(summary));
                space.clamp(&mut perf);
                space.clamp(&mut area);
                vec![perf, area]
            } else {
                vec![space.random(rng)]
            }
        };

    // 3. Static FCFS schedule: partition i goes to worker i % workers.
    struct Job {
        index: usize,
        space: s2fa_tuner::SearchSpace,
        seeds: Vec<s2fa_tuner::Config>,
        worker: usize,
    }
    let jobs: Vec<Job> = subspaces
        .into_iter()
        .enumerate()
        .map(|(i, space)| {
            let seeds = seeds_for(&space, &mut rng);
            Job {
                index: i,
                space,
                seeds,
                worker: i % opts.workers.max(1),
            }
        })
        .collect();

    // 4. Run each worker's queue on its own thread.
    let n_workers = opts.workers.max(1);
    let mut worker_queues: Vec<Vec<&Job>> = vec![Vec::new(); n_workers];
    for j in &jobs {
        worker_queues[j.worker].push(j);
    }
    type WorkerResult = Vec<(usize, f64, TuningOutcome, Option<(DesignConfig, Estimate)>)>;
    let results: Vec<WorkerResult> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for queue in &worker_queues {
            let ds_ref = &ds;
            let handle = scope.spawn(move |_| {
                let mut clock = 0.0f64;
                let mut out = Vec::new();
                for job in queue {
                    let budget = opts.budget_minutes - clock;
                    if budget <= 0.0 {
                        break;
                    }
                    let mut best_detail: Option<(DesignConfig, Estimate)> = None;
                    let mut best_val = f64::INFINITY;
                    let mut obj = |cfg: &s2fa_tuner::Config| -> Measurement {
                        let dc = ds_ref.decode(cfg);
                        let est = estimator.evaluate(summary, &dc);
                        let m = Measurement {
                            value: est.objective(),
                            minutes: est.hls_minutes,
                        };
                        if m.value < best_val {
                            best_val = m.value;
                            best_detail = Some((dc, est));
                        }
                        m
                    };
                    let mut stopper = make_stopper(opts.stopping, job.space.params().len());
                    let run = TuningRun::new(
                        job.space.clone(),
                        TuningOptions {
                            budget_minutes: budget,
                            parallel_evals: opts.parallel_evals,
                            seeds: job.seeds.clone(),
                            rng_seed: opts.rng_seed.wrapping_add(job.index as u64 * 7919),
                            max_evaluations: 1_000_000,
                        },
                    );
                    let outcome = run.run(&mut obj, stopper.as_mut());
                    let start = clock;
                    clock += outcome.elapsed_minutes;
                    out.push((job.index, start, outcome, best_detail));
                }
                out
            });
            handles.push(handle);
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
    .expect("crossbeam scope failed");

    // 5. Merge.
    let mut per_partition = Vec::new();
    let mut all_events: Vec<(f64, f64)> = Vec::new();
    let mut total_evals = 0u64;
    let mut makespan = 0.0f64;
    let mut best: Option<(DesignConfig, Estimate)> = None;
    let mut best_val = f64::INFINITY;
    for (worker, worker_results) in results.into_iter().enumerate() {
        for (index, start, outcome, detail) in worker_results {
            total_evals += outcome.evaluations;
            makespan = makespan.max(start + outcome.elapsed_minutes);
            for e in &outcome.trace {
                if e.value.is_finite() {
                    all_events.push((start + e.minute, e.value));
                }
            }
            if let Some((dc, est)) = detail {
                if est.objective() < best_val {
                    best_val = est.objective();
                    best = Some((dc, est));
                }
            }
            per_partition.push(PartitionRun {
                index,
                rules: rule_descriptions.get(index).cloned().unwrap_or_default(),
                worker,
                start_minute: start,
                elapsed_minutes: outcome.elapsed_minutes,
                evaluations: outcome.evaluations,
                best_value: outcome.best_value(),
                reason: outcome.reason,
            });
        }
    }
    per_partition.sort_by_key(|p| p.index);
    all_events.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut convergence = Vec::with_capacity(all_events.len());
    let mut running = f64::INFINITY;
    for (m, v) in all_events {
        if v < running {
            running = v;
            convergence.push((m, running));
        }
    }

    DseOutcome {
        best,
        convergence,
        elapsed_minutes: makespan,
        total_evaluations: total_evals,
        partitions: jobs.len(),
        per_partition,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_hlsir::{
        Access, BufferDir, BufferInfo, CarriedDep, LoopId, LoopInfo, OpCounts, Stride,
    };

    fn summary() -> KernelSummary {
        let mut inner_ops = OpCounts::new();
        inner_ops.fadd = 1;
        inner_ops.fmul = 1;
        inner_ops.mem_read = 2;
        let mut chain = OpCounts::new();
        chain.fadd = 1;
        let mut outer_ops = OpCounts::new();
        outer_ops.mem_write = 1;
        KernelSummary {
            name: "dot".into(),
            loops: vec![
                LoopInfo {
                    id: LoopId(0),
                    var: "t".into(),
                    trip_count: 1024,
                    depth: 0,
                    parent: None,
                    children: vec![LoopId(1)],
                    body_ops: outer_ops,
                    accesses: vec![Access {
                        buffer: "out_1".into(),
                        write: true,
                        stride: Stride::Unit,
                    }],
                    carried: None,
                },
                LoopInfo {
                    id: LoopId(1),
                    var: "j".into(),
                    trip_count: 64,
                    depth: 1,
                    parent: Some(LoopId(0)),
                    children: vec![],
                    body_ops: inner_ops,
                    accesses: vec![
                        Access {
                            buffer: "in_1".into(),
                            write: false,
                            stride: Stride::Unit,
                        },
                        Access {
                            buffer: "w".into(),
                            write: false,
                            stride: Stride::Zero,
                        },
                    ],
                    carried: Some(CarriedDep {
                        via: "s".into(),
                        chain,
                        reducible: true,
                    }),
                },
            ],
            buffers: vec![
                BufferInfo {
                    name: "in_1".into(),
                    elem_bits: 32,
                    len: 64,
                    dir: BufferDir::In,
                    broadcast: false,
                },
                BufferInfo {
                    name: "w".into(),
                    elem_bits: 32,
                    len: 64,
                    dir: BufferDir::In,
                    broadcast: false,
                },
                BufferInfo {
                    name: "out_1".into(),
                    elem_bits: 32,
                    len: 1,
                    dir: BufferDir::Out,
                    broadcast: false,
                },
            ],
            task_loop: LoopId(0),
            tasks_hint: 1024,
        }
    }

    #[test]
    fn s2fa_run_produces_feasible_best() {
        let s = summary();
        let est = Estimator::new();
        let mut opts = DseOptions::s2fa();
        opts.budget_minutes = 120.0;
        let out = run_dse(&s, &est, &opts);
        let (_, e) = out.best.as_ref().expect("found a design");
        assert!(e.is_feasible());
        assert!(out.total_evaluations > 10);
        assert!(out.partitions >= 2);
        assert!(out.elapsed_minutes <= 120.0 + 1e-9);
        // convergence is non-increasing
        for w in out.convergence.windows(2) {
            assert!(w[1].1 <= w[0].1);
            assert!(w[1].0 >= w[0].0);
        }
    }

    #[test]
    fn s2fa_beats_or_matches_vanilla_in_time_to_quality() {
        let s = summary();
        let est = Estimator::new();
        let mut so = DseOptions::s2fa();
        so.budget_minutes = 240.0;
        let mut vo = vanilla_options();
        vo.budget_minutes = 240.0;
        let s2 = run_dse(&s, &est, &so);
        let va = run_dse(&s, &est, &vo);
        assert!(s2.best_value().is_finite());
        assert!(va.best_value().is_finite());
        // S2FA should terminate earlier (entropy stop) and reach at least
        // vanilla-comparable quality.
        assert!(
            s2.elapsed_minutes <= va.elapsed_minutes,
            "s2fa {} vs vanilla {}",
            s2.elapsed_minutes,
            va.elapsed_minutes
        );
        assert!(
            s2.best_value() <= va.best_value() * 1.6,
            "s2fa {} vs vanilla {}",
            s2.best_value(),
            va.best_value()
        );
    }

    #[test]
    fn seed_generation_guarantees_a_feasible_start() {
        // §4.3.2: "With the conservative seed as a starting point, the
        // learning algorithm is guaranteed to start searching in the
        // feasible region" — the first batch of a seeded run always
        // contains a feasible (finite) point.
        let s = summary();
        let est = Estimator::new();
        let mut with = DseOptions::s2fa();
        with.partition = false;
        with.budget_minutes = 30.0;
        let w = run_dse(&s, &est, &with);
        let first_batch_feasible = w.per_partition.iter().all(|p| p.best_value.is_finite());
        assert!(first_batch_feasible);
        // and the seeded best at the first instant is already defined
        assert!(w.convergence.first().map(|&(_, v)| v).unwrap().is_finite());
    }

    #[test]
    fn deterministic_across_runs() {
        let s = summary();
        let est = Estimator::new();
        let mut opts = DseOptions::s2fa();
        opts.budget_minutes = 60.0;
        let a = run_dse(&s, &est, &opts);
        let b = run_dse(&s, &est, &opts);
        assert_eq!(a.best_value(), b.best_value());
        assert_eq!(a.total_evaluations, b.total_evaluations);
        assert_eq!(a.convergence, b.convergence);
    }

    #[test]
    fn trivial_stop_runs_longer_than_entropy() {
        let s = summary();
        let est = Estimator::new();
        let mut ent = DseOptions::s2fa();
        ent.budget_minutes = 240.0;
        let mut triv = ent.clone();
        triv.stopping = StoppingKind::Trivial { k: 10 };
        let e = run_dse(&s, &est, &ent);
        let t = run_dse(&s, &est, &triv);
        assert!(
            e.elapsed_minutes <= t.elapsed_minutes * 1.05,
            "entropy {} vs trivial {}",
            e.elapsed_minutes,
            t.elapsed_minutes
        );
    }

    #[test]
    fn best_at_minute_interpolates() {
        let out = DseOutcome {
            best: None,
            convergence: vec![(10.0, 100.0), (50.0, 40.0)],
            elapsed_minutes: 60.0,
            total_evaluations: 2,
            partitions: 1,
            per_partition: vec![],
        };
        assert!(out.best_at_minute(5.0).is_infinite());
        assert_eq!(out.best_at_minute(10.0), 100.0);
        assert_eq!(out.best_at_minute(30.0), 100.0);
        assert_eq!(out.best_at_minute(55.0), 40.0);
    }
}
