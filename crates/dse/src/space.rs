//! Design-space identification (paper §4.1, Table 1).
//!
//! Builds the tunable parameter space from a [`KernelSummary`]:
//!
//! | Factor            | Values                                           |
//! |-------------------|--------------------------------------------------|
//! | Buffer bit-width  | `b = 2^n, 8 < b ≤ 512` per interface buffer      |
//! | Loop tiling       | `t = 2^n, 1 < t < TC(L)` (plus *off*) per loop   |
//! | Loop parallel     | `u = 2^n, 1 < u < TC(L)` (plus *off*) per loop   |
//! | Loop pipeline     | `{off, on, flatten}` per loop                    |
//!
//! and maps index-encoded tuner configurations back to Merlin
//! [`DesignConfig`]s.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use s2fa_hlsir::{BufferDir, KernelSummary, LoopId, PipelineMode};
use s2fa_lint::Legality;
use s2fa_merlin::DesignConfig;
use s2fa_tuner::{Config, ParamDef, ParamKind, SearchSpace};

/// What one tuner parameter controls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Slot {
    /// Tiling factor of a loop (decoded value 1 = off).
    LoopTile(LoopId),
    /// Parallel factor of a loop (decoded value 1 = off).
    LoopParallel(LoopId),
    /// Pipeline mode of a loop (enum index 0/1/2 = off/on/flatten).
    LoopPipeline(LoopId),
    /// Port bit-width of an interface buffer.
    BufferBits(String),
}

/// The identified design space of one kernel: a tuner [`SearchSpace`] plus
/// the mapping from parameters to Merlin directives.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    space: SearchSpace,
    slots: Vec<Slot>,
}

/// Cap on parallel/tile factors (beyond this no design routes anyway).
const MAX_FACTOR: u32 = 512;

fn pow2_below(tc: u32) -> u32 {
    // largest power of two strictly less than tc, at least 1
    if tc <= 2 {
        1
    } else {
        let mut p = 1u32;
        while p * 2 < tc {
            p *= 2;
        }
        p
    }
}

impl DesignSpace {
    /// Identifies the design space of a kernel per Table 1.
    pub fn build(summary: &KernelSummary) -> DesignSpace {
        let mut params = Vec::new();
        let mut slots = Vec::new();
        for l in &summary.loops {
            let max_factor = pow2_below(l.trip_count).min(MAX_FACTOR);
            params.push(ParamDef::new(
                format!("{}.tile", l.id),
                ParamKind::PowerOfTwo {
                    min: 1,
                    max: max_factor,
                },
            ));
            slots.push(Slot::LoopTile(l.id));
            params.push(ParamDef::new(
                format!("{}.parallel", l.id),
                ParamKind::PowerOfTwo {
                    min: 1,
                    max: max_factor,
                },
            ));
            slots.push(Slot::LoopParallel(l.id));
            params.push(ParamDef::new(
                format!("{}.pipeline", l.id),
                ParamKind::Enum { n: 3 },
            ));
            slots.push(Slot::LoopPipeline(l.id));
        }
        for b in &summary.buffers {
            if b.dir != BufferDir::Local {
                params.push(ParamDef::new(
                    format!("{}.bits", b.name),
                    ParamKind::PowerOfTwo { min: 16, max: 512 },
                ));
                slots.push(Slot::BufferBits(b.name.clone()));
            }
        }
        DesignSpace {
            space: SearchSpace::new(params),
            slots,
        }
    }

    /// The tuner search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// The parameter-to-directive mapping, parallel to
    /// [`SearchSpace::params`].
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// Base-10 log of the number of design points.
    pub fn size_log10(&self) -> f64 {
        self.space.size_log10()
    }

    /// Estimates the statically-dead fraction of `space` (a subspace of
    /// this design space, e.g. one partition leaf): samples `samples`
    /// uniform configurations with an RNG derived *only* from `seed` and
    /// returns the share that `oracle` proves infeasible.
    ///
    /// Purely diagnostic: the side RNG stream never touches the search's
    /// RNG, and the oracle is counter-free, so reporting the fraction
    /// cannot perturb a run.
    pub fn dead_fraction(
        &self,
        space: &SearchSpace,
        oracle: &Legality,
        samples: usize,
        seed: u64,
    ) -> f64 {
        if samples == 0 {
            return 0.0;
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let dead = (0..samples)
            .filter(|_| oracle.is_statically_dead(&self.decode(&space.random(&mut rng))))
            .count();
        dead as f64 / samples as f64
    }

    /// Decodes a tuner configuration into a Merlin design configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` does not match the space's arity.
    pub fn decode(&self, cfg: &Config) -> DesignConfig {
        assert_eq!(cfg.len(), self.slots.len(), "config arity mismatch");
        let mut out = DesignConfig::new();
        for ((slot, &idx), def) in self.slots.iter().zip(cfg).zip(self.space.params()) {
            match slot {
                Slot::LoopTile(id) => {
                    let t = def.value_at(idx);
                    if t > 1 {
                        out.loop_directive_mut(*id).tile = Some(t);
                    }
                }
                Slot::LoopParallel(id) => {
                    out.loop_directive_mut(*id).parallel = def.value_at(idx);
                }
                Slot::LoopPipeline(id) => {
                    out.loop_directive_mut(*id).pipeline = match def.value_at(idx) {
                        0 => PipelineMode::Off,
                        1 => PipelineMode::On,
                        _ => PipelineMode::Flatten,
                    };
                }
                Slot::BufferBits(name) => {
                    out.buffer_bits.insert(name.clone(), def.value_at(idx));
                }
            }
        }
        out
    }

    /// Encodes a Merlin design configuration into the nearest tuner
    /// configuration (used to inject the generated seeds).
    pub fn encode(&self, dc: &DesignConfig) -> Config {
        self.slots
            .iter()
            .zip(self.space.params())
            .map(|(slot, def)| {
                let value = match slot {
                    Slot::LoopTile(id) => dc.loop_directive(*id).tile.unwrap_or(1),
                    Slot::LoopParallel(id) => dc.loop_directive(*id).parallel_factor(),
                    Slot::LoopPipeline(id) => match dc.loop_directive(*id).pipeline {
                        PipelineMode::Off => 0,
                        PipelineMode::On => 1,
                        PipelineMode::Flatten => 2,
                    },
                    Slot::BufferBits(name) => dc.buffer_width(name),
                };
                nearest_index(def, value)
            })
            .collect()
    }

    /// Index of the parameter controlling the given slot, if present.
    pub fn slot_index(&self, slot: &Slot) -> Option<usize> {
        self.slots.iter().position(|s| s == slot)
    }

    /// True if parameter `i` controls a factor of the template (task)
    /// loop — the partition rules prefer splitting on these (§4.3.1,
    /// "partition the design space according to the RDD transformation
    /// semantics ... the scheduling of the outermost loop").
    pub fn is_task_loop_param(&self, i: usize, summary: &KernelSummary) -> bool {
        matches!(
            &self.slots[i],
            Slot::LoopTile(id) | Slot::LoopParallel(id) | Slot::LoopPipeline(id)
                if *id == summary.task_loop
        )
    }

    /// Nesting depth of the loop controlled by parameter `i` (`None` for
    /// buffer parameters) — the loop-hierarchy partition rule.
    pub fn param_loop_depth(&self, i: usize, summary: &KernelSummary) -> Option<u32> {
        match &self.slots[i] {
            Slot::LoopTile(id) | Slot::LoopParallel(id) | Slot::LoopPipeline(id) => {
                summary.loop_info(*id).map(|l| l.depth)
            }
            Slot::BufferBits(_) => None,
        }
    }
}

/// Domain index whose decoded value is nearest to `value`.
fn nearest_index(def: &ParamDef, value: u32) -> u32 {
    let mut best = 0;
    let mut best_d = u32::MAX;
    for i in 0..def.cardinality() {
        let v = def.value_at(i);
        let d = v.abs_diff(value);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_hlsir::{BufferInfo, LoopInfo, OpCounts};

    fn summary() -> KernelSummary {
        KernelSummary {
            name: "k".into(),
            loops: vec![
                LoopInfo {
                    id: LoopId(0),
                    var: "t".into(),
                    trip_count: 1024,
                    depth: 0,
                    parent: None,
                    children: vec![LoopId(1)],
                    body_ops: OpCounts::new(),
                    accesses: vec![],
                    carried: None,
                },
                LoopInfo {
                    id: LoopId(1),
                    var: "j".into(),
                    trip_count: 8,
                    depth: 1,
                    parent: Some(LoopId(0)),
                    children: vec![],
                    body_ops: OpCounts::new(),
                    accesses: vec![],
                    carried: None,
                },
            ],
            buffers: vec![
                BufferInfo {
                    name: "in_1".into(),
                    elem_bits: 32,
                    len: 8,
                    dir: BufferDir::In,
                    broadcast: false,
                },
                BufferInfo {
                    name: "scratch".into(),
                    elem_bits: 32,
                    len: 64,
                    dir: BufferDir::Local,
                    broadcast: false,
                },
            ],
            task_loop: LoopId(0),
            tasks_hint: 1024,
            dataflow: None,
        }
    }

    #[test]
    fn space_matches_table1() {
        let ds = DesignSpace::build(&summary());
        // 2 loops × 3 factors + 1 interface buffer
        assert_eq!(ds.space().params().len(), 7);
        let names: Vec<&str> = ds
            .space()
            .params()
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert!(names.contains(&"L0.parallel"));
        assert!(names.contains(&"L1.pipeline"));
        assert!(names.contains(&"in_1.bits"));
        // local arrays are not interface factors
        assert!(!names.iter().any(|n| n.starts_with("scratch")));
        // parallel on L0: 1..512 (clamped below TC=1024) → 10 values
        let i = ds.space().param_index("L0.parallel").unwrap();
        assert_eq!(ds.space().params()[i].cardinality(), 10);
        // parallel on L1 (TC=8): 1,2,4 → 3 values (u < TC)
        let i = ds.space().param_index("L1.parallel").unwrap();
        assert_eq!(ds.space().params()[i].cardinality(), 3);
        // bit-widths: 16..512 → 6 values
        let i = ds.space().param_index("in_1.bits").unwrap();
        assert_eq!(ds.space().params()[i].cardinality(), 6);
    }

    #[test]
    fn decode_roundtrips_seed() {
        let s = summary();
        let ds = DesignSpace::build(&s);
        let perf = DesignConfig::perf_seed(&s);
        let enc = ds.encode(&perf);
        let dec = ds.decode(&enc);
        assert_eq!(dec.loop_directive(LoopId(0)).parallel, 32);
        // L1 parallel was clamped to 8, nearest encodable value is 4 (u<TC)
        assert!(dec.loop_directive(LoopId(1)).parallel >= 4);
        assert_eq!(dec.buffer_width("in_1"), 512);
        assert_eq!(dec.loop_directive(LoopId(0)).pipeline, PipelineMode::On);
    }

    #[test]
    fn decode_pipeline_enum() {
        let s = summary();
        let ds = DesignSpace::build(&s);
        let i = ds.space().param_index("L0.pipeline").unwrap();
        let mut cfg: Config = vec![0; ds.space().params().len()];
        cfg[i] = 2;
        let dc = ds.decode(&cfg);
        assert_eq!(dc.loop_directive(LoopId(0)).pipeline, PipelineMode::Flatten);
    }

    #[test]
    fn task_loop_params_flagged() {
        let s = summary();
        let ds = DesignSpace::build(&s);
        let i0 = ds.space().param_index("L0.parallel").unwrap();
        let i1 = ds.space().param_index("L1.parallel").unwrap();
        let ib = ds.space().param_index("in_1.bits").unwrap();
        assert!(ds.is_task_loop_param(i0, &s));
        assert!(!ds.is_task_loop_param(i1, &s));
        assert!(!ds.is_task_loop_param(ib, &s));
        assert_eq!(ds.param_loop_depth(i1, &s), Some(1));
        assert_eq!(ds.param_loop_depth(ib, &s), None);
    }

    #[test]
    fn size_is_large() {
        let ds = DesignSpace::build(&summary());
        // 10*10*3 × 3*3*3 × 6 ≈ 4.8e4 points for this toy kernel
        assert!(ds.size_log10() > 4.0);
    }
}
