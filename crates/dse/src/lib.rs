#![warn(missing_docs)]

//! # s2fa-dse — S2FA's parallel learning-based design space exploration
//!
//! This crate implements the paper's §4: the design-space identification of
//! Table 1 and the three DSE accelerations of §4.3 layered on top of the
//! OpenTuner substitute (`s2fa-tuner`):
//!
//! 1. **Design-space partition** ([`partition`]) — a regression decision
//!    tree (information gain, variance impurity, Eq. 1) built over probe
//!    samples, with split candidates biased toward the template (RDD
//!    operator) loop's factors; leaves become disjoint sub-spaces explored
//!    in parallel by a first-come-first-serve scheduler over 8 workers.
//! 2. **Seed generation** ([`DesignConfig::perf_seed`] /
//!    [`DesignConfig::area_seed`], re-exported from `s2fa-merlin`) — each
//!    partition starts from a performance-driven and an area-driven
//!    (conservative) seed clipped into its sub-space.
//! 3. **Early stopping** ([`entropy::EntropyStop`]) — the Shannon-entropy
//!    criterion of Eq. 2 over per-factor uphill probabilities.
//!
//! [`driver::run_dse`] runs the full S2FA flow; [`driver::vanilla_options`]
//! configures the Fig. 3 baseline (no partition, random seed, top-8
//! parallel evaluation, 4-hour time limit). All runs are deterministic.
//!
//! [`DesignConfig::perf_seed`]: s2fa_merlin::DesignConfig::perf_seed
//! [`DesignConfig::area_seed`]: s2fa_merlin::DesignConfig::area_seed

pub mod driver;
pub mod entropy;
pub mod partition;
pub mod space;

pub use driver::{
    run_dse, run_dse_profiled, run_dse_traced, vanilla_options, DseOptions, DseOutcome,
    PartitionRun, StoppingKind,
};
pub use entropy::EntropyStop;
pub use partition::{DecisionTree, Partitioner};
pub use s2fa_engine::{CacheStats, EvalEngine};
pub use space::DesignSpace;
