//! Integration smoke test of the DSE driver dynamics on a synthetic
//! dot-product kernel, asserting the §4.3 behaviours end to end.
use s2fa_dse::{run_dse, vanilla_options, DseOptions};
use s2fa_hlsir::*;
use s2fa_hlssim::Estimator;

fn summary() -> KernelSummary {
    let mut inner_ops = OpCounts::new();
    inner_ops.fadd = 1;
    inner_ops.fmul = 1;
    inner_ops.mem_read = 2;
    let mut chain = OpCounts::new();
    chain.fadd = 1;
    let mut outer_ops = OpCounts::new();
    outer_ops.mem_write = 1;
    KernelSummary {
        name: "dot".into(),
        loops: vec![
            LoopInfo {
                id: LoopId(0),
                var: "t".into(),
                trip_count: 1024,
                depth: 0,
                parent: None,
                children: vec![LoopId(1)],
                body_ops: outer_ops,
                accesses: vec![Access {
                    buffer: "out_1".into(),
                    write: true,
                    stride: Stride::Unit,
                }],
                carried: None,
            },
            LoopInfo {
                id: LoopId(1),
                var: "j".into(),
                trip_count: 64,
                depth: 1,
                parent: Some(LoopId(0)),
                children: vec![],
                body_ops: inner_ops,
                accesses: vec![
                    Access {
                        buffer: "in_1".into(),
                        write: false,
                        stride: Stride::Unit,
                    },
                    Access {
                        buffer: "w".into(),
                        write: false,
                        stride: Stride::Zero,
                    },
                ],
                carried: Some(CarriedDep {
                    via: "s".into(),
                    chain,
                    reducible: true,
                }),
            },
        ],
        buffers: vec![
            BufferInfo {
                name: "in_1".into(),
                elem_bits: 32,
                len: 64,
                dir: BufferDir::In,
                broadcast: false,
            },
            BufferInfo {
                name: "w".into(),
                elem_bits: 32,
                len: 64,
                dir: BufferDir::In,
                broadcast: false,
            },
            BufferInfo {
                name: "out_1".into(),
                elem_bits: 32,
                len: 1,
                dir: BufferDir::Out,
                broadcast: false,
            },
        ],
        task_loop: LoopId(0),
        tasks_hint: 1024,
        dataflow: None,
    }
}

#[test]
fn dse_dynamics_on_a_synthetic_kernel() {
    let s = summary();
    let est = Estimator::new();
    let out = run_dse(&s, &est, &DseOptions::s2fa());
    let van = run_dse(&s, &est, &vanilla_options());

    // Both flows find feasible designs of comparable quality.
    assert!(out.best_value().is_finite());
    assert!(van.best_value().is_finite());
    let ratio = van.best_value() / out.best_value();
    assert!((0.5..=2.0).contains(&ratio), "qor ratio {ratio}");

    // S2FA ran partitions in parallel across the 8 workers ...
    assert!(out.partitions >= 8, "partitions: {}", out.partitions);
    let workers: std::collections::HashSet<usize> =
        out.per_partition.iter().map(|p| p.worker).collect();
    assert!(workers.len() >= 4, "worker spread: {workers:?}");
    // ... every partition charged virtual time and evaluations ...
    for p in &out.per_partition {
        if p.evaluations > 0 {
            assert!(p.elapsed_minutes > 0.0, "partition {}: {p:?}", p.index);
            assert!(!p.rules.is_empty());
        }
    }
    // ... and the makespan respects the budget.
    assert!(out.elapsed_minutes <= 240.0 + 1e-9);
    assert!((van.elapsed_minutes - 240.0).abs() < 1e-9);

    // The seeded runs start from a feasible design immediately.
    let first = out.convergence.first().expect("improvements recorded");
    assert!(first.1.is_finite());
}
