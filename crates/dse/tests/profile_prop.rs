//! Property tests for the profiled driver: across randomized pipeline
//! configurations, (1) the recorded span forest is always well-formed
//! and carries the driver's stage spans, and (2) profiling never
//! perturbs the search — the outcome with an enabled profiler is
//! bit-identical to the unprofiled run.

use proptest::prelude::*;
use s2fa_dse::{run_dse, run_dse_profiled, DseOptions, DseOutcome};
use s2fa_hlsir::{BufferDir, BufferInfo, KernelSummary, LoopId, LoopInfo, OpCounts};
use s2fa_hlssim::Estimator;
use s2fa_obs::{verify_spans, Profiler};
use s2fa_trace::NullSink;
use std::sync::Arc;

/// A dot-product-shaped kernel: a 1024-task loop over a 64-trip MAC.
fn summary() -> KernelSummary {
    let mut inner_ops = OpCounts::new();
    inner_ops.fadd = 1;
    inner_ops.fmul = 1;
    inner_ops.mem_read = 2;
    let mut outer_ops = OpCounts::new();
    outer_ops.mem_write = 1;
    KernelSummary {
        name: "prof_prop".into(),
        loops: vec![
            LoopInfo {
                id: LoopId(0),
                var: "t".into(),
                trip_count: 1024,
                depth: 0,
                parent: None,
                children: vec![LoopId(1)],
                body_ops: outer_ops,
                accesses: vec![],
                carried: None,
            },
            LoopInfo {
                id: LoopId(1),
                var: "j".into(),
                trip_count: 64,
                depth: 1,
                parent: Some(LoopId(0)),
                children: vec![],
                body_ops: inner_ops,
                accesses: vec![],
                carried: None,
            },
        ],
        buffers: vec![
            BufferInfo {
                name: "in_1".into(),
                elem_bits: 32,
                len: 64,
                dir: BufferDir::In,
                broadcast: false,
            },
            BufferInfo {
                name: "out_1".into(),
                elem_bits: 64,
                len: 1,
                dir: BufferDir::Out,
                broadcast: false,
            },
        ],
        task_loop: LoopId(0),
        tasks_hint: 1024,
    }
}

/// Everything about an outcome except the cache counters (whose
/// hit/miss split depends on the work-stealing order), in one
/// comparable string.
fn key(out: &DseOutcome) -> String {
    format!(
        "{:?}|{:?}|{}|{}|{}|{}|{:?}|{:?}",
        out.best,
        out.convergence,
        out.elapsed_minutes,
        out.total_evaluations,
        out.killed_evals,
        out.partitions,
        out.techniques,
        out.per_partition,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn profiling_randomized_pipelines_is_wellformed_and_observational(
        workers in 1usize..4,
        eval_threads in 1usize..4,
        partition in any::<bool>(),
        seeds in any::<bool>(),
        caching in any::<bool>(),
        prescreen in any::<bool>(),
        budget in 20.0f64..90.0,
        rng_seed in any::<u64>(),
    ) {
        let s = summary();
        let est = Estimator::new();
        let mut opts = DseOptions::s2fa();
        opts.workers = workers;
        opts.eval_threads = eval_threads;
        opts.partition = partition;
        opts.seeds = seeds;
        opts.caching = caching;
        opts.prescreen = prescreen;
        opts.budget_minutes = budget;
        opts.rng_seed = rng_seed;

        let plain = run_dse(&s, &est, &opts);
        let profiler = Profiler::enabled();
        let profiled =
            run_dse_profiled(&s, &est, &opts, Arc::new(NullSink), &profiler);
        prop_assert_eq!(key(&plain), key(&profiled));

        let spans = profiler.take_spans();
        if let Err(e) = verify_spans(&spans) {
            panic!("ill-formed forest: {e}");
        }
        for stage in ["dse", "space_identification", "partition", "seeds", "explore", "merge"] {
            prop_assert!(
                spans.iter().any(|r| r.name == stage),
                "missing stage span {stage:?}"
            );
        }
    }
}
