//! Property tests for the profiled driver: across randomized pipeline
//! configurations, (1) the recorded span forest is always well-formed
//! and carries the driver's stage spans, and (2) profiling never
//! perturbs the search — the outcome with an enabled profiler is
//! bit-identical to the unprofiled run.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use s2fa_dse::{run_dse, run_dse_profiled, DesignSpace, DseOptions, DseOutcome, EvalEngine};
use s2fa_engine::WorkerPool;
use s2fa_hlsir::{
    Access, BufferDir, BufferInfo, CarriedDep, KernelSummary, LoopId, LoopInfo, OpCounts, Stride,
};
use s2fa_hlssim::Estimator;
use s2fa_obs::{verify_spans, Profiler};
use s2fa_trace::NullSink;
use s2fa_tuner::{Measurement, Objective, ThreadedObjective};
use std::sync::Arc;

/// A dot-product-shaped kernel: a 1024-task loop over a 64-trip MAC.
fn summary() -> KernelSummary {
    let mut inner_ops = OpCounts::new();
    inner_ops.fadd = 1;
    inner_ops.fmul = 1;
    inner_ops.mem_read = 2;
    let mut outer_ops = OpCounts::new();
    outer_ops.mem_write = 1;
    KernelSummary {
        name: "prof_prop".into(),
        loops: vec![
            LoopInfo {
                id: LoopId(0),
                var: "t".into(),
                trip_count: 1024,
                depth: 0,
                parent: None,
                children: vec![LoopId(1)],
                body_ops: outer_ops,
                accesses: vec![],
                carried: None,
            },
            LoopInfo {
                id: LoopId(1),
                var: "j".into(),
                trip_count: 64,
                depth: 1,
                parent: Some(LoopId(0)),
                children: vec![],
                body_ops: inner_ops,
                accesses: vec![],
                carried: None,
            },
        ],
        buffers: vec![
            BufferInfo {
                name: "in_1".into(),
                elem_bits: 32,
                len: 64,
                dir: BufferDir::In,
                broadcast: false,
            },
            BufferInfo {
                name: "out_1".into(),
                elem_bits: 64,
                len: 1,
                dir: BufferDir::Out,
                broadcast: false,
            },
        ],
        task_loop: LoopId(0),
        tasks_hint: 1024,
        dataflow: None,
    }
}

/// Everything about an outcome except the cache counters (whose
/// hit/miss split depends on the work-stealing order), in one
/// comparable string.
fn key(out: &DseOutcome) -> String {
    format!(
        "{:?}|{:?}|{}|{}|{}|{}|{:?}|{:?}",
        out.best,
        out.convergence,
        out.elapsed_minutes,
        out.total_evaluations,
        out.killed_evals,
        out.partitions,
        out.techniques,
        out.per_partition,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn profiling_randomized_pipelines_is_wellformed_and_observational(
        workers in 1usize..4,
        eval_threads in 1usize..4,
        partition in any::<bool>(),
        seeds in any::<bool>(),
        caching in any::<bool>(),
        prescreen in any::<bool>(),
        budget in 20.0f64..90.0,
        rng_seed in any::<u64>(),
    ) {
        let s = summary();
        let est = Estimator::new();
        let mut opts = DseOptions::s2fa();
        opts.workers = workers;
        opts.eval_threads = eval_threads;
        opts.partition = partition;
        opts.seeds = seeds;
        opts.caching = caching;
        opts.prescreen = prescreen;
        opts.budget_minutes = budget;
        opts.rng_seed = rng_seed;

        let plain = run_dse(&s, &est, &opts);
        let profiler = Profiler::enabled();
        let profiled =
            run_dse_profiled(&s, &est, &opts, Arc::new(NullSink), &profiler);
        prop_assert_eq!(key(&plain), key(&profiled));

        let spans = profiler.take_spans();
        if let Err(e) = verify_spans(&spans) {
            panic!("ill-formed forest: {e}");
        }
        for stage in ["dse", "space_identification", "partition", "seeds", "explore", "merge"] {
            prop_assert!(
                spans.iter().any(|r| r.name == stage),
                "missing stage span {stage:?}"
            );
        }
    }
}

/// A randomized linear loop nest: loop `i` trips `trips[i]` times and
/// streams buffer `b{i}` (width `bits[i]`); the innermost loop optionally
/// carries a reducible accumulation so the tree-reduction directive is in
/// play. Exercises variable nest depth, buffer widths, and recurrences in
/// the subtree-cost cache.
fn random_summary(trips: &[u32], bits: &[u32], carried: bool) -> KernelSummary {
    let n = trips.len();
    let mut loops = Vec::new();
    let mut buffers = Vec::new();
    for (i, &trip) in trips.iter().enumerate() {
        let mut ops = OpCounts::new();
        ops.fadd = 1;
        ops.fmul = (i % 2) as u32;
        ops.int_alu = 1 + i as u32;
        ops.mem_read = 1;
        if i == 0 {
            ops.mem_write = 1;
        }
        let innermost = i + 1 == n;
        loops.push(LoopInfo {
            id: LoopId(i as u32),
            var: format!("i{i}"),
            trip_count: trip,
            depth: i as u32,
            parent: (i > 0).then(|| LoopId(i as u32 - 1)),
            children: if innermost {
                vec![]
            } else {
                vec![LoopId(i as u32 + 1)]
            },
            body_ops: ops,
            accesses: vec![Access {
                buffer: format!("b{i}"),
                write: false,
                stride: Stride::Unit,
            }],
            carried: (innermost && carried).then(|| {
                let mut chain = OpCounts::new();
                chain.fadd = 1;
                CarriedDep {
                    via: "acc".into(),
                    chain,
                    reducible: true,
                }
            }),
        });
        buffers.push(BufferInfo {
            name: format!("b{i}"),
            elem_bits: bits[i % bits.len()],
            len: 64,
            dir: BufferDir::In,
            broadcast: false,
        });
    }
    buffers.push(BufferInfo {
        name: "out".into(),
        elem_bits: 32,
        len: 1,
        dir: BufferDir::Out,
        broadcast: false,
    });
    KernelSummary {
        name: "pool_prop".into(),
        loops,
        buffers,
        task_loop: LoopId(0),
        tasks_hint: trips[0],
        dataflow: None,
    }
}

/// `Measurement` holds two `f64`s; compare their exact bit patterns so
/// "identical" means *bit*-identical, not merely approximately equal.
fn bits(ms: &[Measurement]) -> Vec<(u64, u64)> {
    ms.iter()
        .map(|m| (m.value.to_bits(), m.minutes.to_bits()))
        .collect()
}

// Tentpole determinism property: the pooled batch path with the
// subtree-incremental estimator and both cache tiers enabled is
// bit-identical to the serial whole-kernel walk with everything off —
// across random kernels, batch sizes, thread counts, chunk sizes, and
// chains of single-factor neighbor mutations. A second (warm) pass over
// the same batch pins the alias fast path and subtree replay to the
// same bits.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pooled_incremental_eval_is_bit_identical_to_serial(
        trips in prop::collection::vec(2u32..48, 1..4),
        bits_pool in prop::collection::vec(prop::sample::select(vec![8u32, 16, 32, 64]), 1..4),
        carried in any::<bool>(),
        batch in 1usize..40,
        threads in 2usize..6,
        chunk in 0usize..7,
        muts in 0usize..12,
        seed in any::<u64>(),
    ) {
        let s = random_summary(&trips, &bits_pool, carried);
        let est = Estimator::new();
        let ds = DesignSpace::build(&s);
        let mut rng = SmallRng::seed_from_u64(seed);

        // A base point, a chain of single-factor neighbors off it, then
        // random fill to the requested batch size.
        let mut configs = Vec::new();
        let mut cur = ds.space().random(&mut rng);
        configs.push(cur.clone());
        for _ in 0..muts {
            ds.space().mutate_one(&mut cur, &mut rng);
            configs.push(cur.clone());
        }
        while configs.len() < batch {
            configs.push(ds.space().random(&mut rng));
        }

        // Reference: serial whole-kernel estimation, no caches.
        let mut serial_engine = EvalEngine::new(&s, &est);
        serial_engine.set_caching(false);
        serial_engine.set_incremental(false);
        let eval_serial = |cfg: &s2fa_tuner::Config| -> Measurement {
            let e = serial_engine.evaluate(&ds.decode(cfg));
            Measurement { value: e.objective(), minutes: e.hls_minutes }
        };
        let mut serial_obj = ThreadedObjective::new(&eval_serial, 1);
        let want = serial_obj.measure_batch(&configs);

        // Candidate: persistent pool + incremental subtree costing +
        // both estimate-cache tiers.
        let pooled_engine = EvalEngine::new(&s, &est);
        let eval_pooled = |cfg: &s2fa_tuner::Config| -> Measurement {
            let e = pooled_engine.evaluate(&ds.decode(cfg));
            Measurement { value: e.objective(), minutes: e.hls_minutes }
        };
        let pool = Arc::new(WorkerPool::new(threads - 1));
        let mut pooled_obj = ThreadedObjective::new(&eval_pooled, threads)
            .with_pool(pool)
            .with_chunk(chunk);
        let cold = pooled_obj.measure_batch(&configs);
        let warm = pooled_obj.measure_batch(&configs);

        prop_assert_eq!(bits(&want), bits(&cold), "cold pooled pass diverged");
        prop_assert_eq!(bits(&want), bits(&warm), "warm (cached) pass diverged");
        prop_assert!(pooled_engine.subtree_stats().entries > 0 || s.loops.len() == 1);
    }
}
