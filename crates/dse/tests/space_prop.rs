//! Property tests for the design-space encoding: every tuner
//! configuration decodes to a legal Merlin design, and encoding is a
//! faithful inverse on the representable subset.

use proptest::prelude::*;
use s2fa_dse::DesignSpace;
use s2fa_hlsir::{BufferDir, BufferInfo, KernelSummary, LoopId, LoopInfo, OpCounts};

fn summary(inner_tc: u32) -> KernelSummary {
    KernelSummary {
        name: "p".into(),
        loops: vec![
            LoopInfo {
                id: LoopId(0),
                var: "t".into(),
                trip_count: 1024,
                depth: 0,
                parent: None,
                children: vec![LoopId(1)],
                body_ops: OpCounts::new(),
                accesses: vec![],
                carried: None,
            },
            LoopInfo {
                id: LoopId(1),
                var: "j".into(),
                trip_count: inner_tc,
                depth: 1,
                parent: Some(LoopId(0)),
                children: vec![],
                body_ops: OpCounts::new(),
                accesses: vec![],
                carried: None,
            },
        ],
        buffers: vec![
            BufferInfo {
                name: "in_1".into(),
                elem_bits: 32,
                len: inner_tc,
                dir: BufferDir::In,
                broadcast: false,
            },
            BufferInfo {
                name: "out_1".into(),
                elem_bits: 64,
                len: 1,
                dir: BufferDir::Out,
                broadcast: false,
            },
        ],
        task_loop: LoopId(0),
        tasks_hint: 1024,
        dataflow: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn decode_encode_roundtrips(inner_pow in 2u32..9, seed in any::<u64>()) {
        use rand::{rngs::SmallRng, SeedableRng};
        let s = summary(1 << inner_pow);
        let ds = DesignSpace::build(&s);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..16 {
            let cfg = ds.space().random(&mut rng);
            let dc = ds.decode(&cfg);
            let back = ds.encode(&dc);
            // encode ∘ decode is the identity on tuner configurations
            prop_assert_eq!(&back, &cfg);
        }
    }

    #[test]
    fn decoded_factors_obey_table1(inner_pow in 2u32..9, seed in any::<u64>()) {
        use rand::{rngs::SmallRng, SeedableRng};
        let inner_tc = 1u32 << inner_pow;
        let s = summary(inner_tc);
        let ds = DesignSpace::build(&s);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..16 {
            let dc = ds.decode(&ds.space().random(&mut rng));
            for l in &s.loops {
                let d = dc.loop_directive(l.id);
                // u = 2^n with 1 <= u < TC (Table 1)
                prop_assert!(d.parallel_factor().is_power_of_two());
                prop_assert!(d.parallel_factor() <= l.trip_count.max(1));
                if let Some(t) = d.tile {
                    prop_assert!(t.is_power_of_two());
                    prop_assert!(t > 1 && t < l.trip_count.max(2));
                }
            }
            for name in ["in_1", "out_1"] {
                let b = dc.buffer_width(name);
                // b = 2^n with 8 < b <= 512
                prop_assert!(b.is_power_of_two() && b > 8 && b <= 512);
            }
        }
    }
}
