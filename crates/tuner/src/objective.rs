//! The objective-function interface.
//!
//! [`TuningRun`](crate::TuningRun) proposes whole batches of candidates
//! before it looks at any result (footnote 3's top-k-per-iteration
//! semantics), which makes the batch the natural unit of *real*
//! parallelism: every configuration in a batch can be measured on its own
//! OS thread without changing what the search observes.
//!
//! [`Objective`] captures that contract. `measure` evaluates one
//! configuration; `measure_batch` evaluates a slice and returns
//! measurements **in input order** — the driver replays its bookkeeping
//! (bandit rewards, trace events, the virtual clock) sequentially over
//! that vector, so an `Objective` may reorder the *work* freely as long as
//! it never reorders the *results*. Any `FnMut(&Config) -> Measurement`
//! closure is an `Objective` via the blanket impl, measuring serially.
//!
//! [`ThreadedObjective`] is the parallel implementation: it fans a batch
//! out over scoped OS threads pulling indices from a shared counter
//! (first-come-first-served), then reassembles the measurements by index.
//! Because each configuration's measurement is a pure function of the
//! configuration, the result vector is identical to the serial one no
//! matter how the OS schedules the threads.

use crate::history::Measurement;
use crate::param::Config;
use s2fa_obs::{Histogram, Lane, Profiler};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Something that can measure design points ("run HLS on them").
pub trait Objective {
    /// Measures one configuration.
    fn measure(&mut self, config: &Config) -> Measurement;

    /// Measures a batch, returning measurements in input order.
    ///
    /// The default implementation measures serially; implementations may
    /// parallelize as long as `result[i]` corresponds to `configs[i]` and
    /// equals what `measure(&configs[i])` would have returned.
    fn measure_batch(&mut self, configs: &[Config]) -> Vec<Measurement> {
        configs.iter().map(|c| self.measure(c)).collect()
    }
}

impl<F: FnMut(&Config) -> Measurement> Objective for F {
    fn measure(&mut self, config: &Config) -> Measurement {
        self(config)
    }
}

/// An [`Objective`] that measures batches on real OS threads.
///
/// Wraps a thread-safe evaluation function (`Fn + Sync` — e.g. a closure
/// over an `EvalEngine`) and a thread count. Batches are distributed
/// first-come-first-served via an atomic cursor, so threads stay busy even
/// when per-point costs vary; results are written back by index, keeping
/// the output order — and therefore every downstream decision of the
/// tuning run — identical to a serial evaluation.
pub struct ThreadedObjective<'a> {
    eval: &'a (dyn Fn(&Config) -> Measurement + Sync),
    threads: usize,
    profiler: Profiler,
    lane: Lane,
    eval_ns: Option<Arc<Histogram>>,
    fanout_ns: Option<Arc<Histogram>>,
    join_ns: Option<Arc<Histogram>>,
}

impl<'a> ThreadedObjective<'a> {
    /// Wraps `eval`, measuring batches on up to `threads` OS threads
    /// (clamped to at least 1). Profiling is off; see
    /// [`with_profiler`](Self::with_profiler).
    pub fn new(eval: &'a (dyn Fn(&Config) -> Measurement + Sync), threads: usize) -> Self {
        ThreadedObjective {
            eval,
            threads: threads.max(1),
            profiler: Profiler::disabled(),
            lane: Profiler::disabled().lane(),
            eval_ns: None,
            fanout_ns: None,
            join_ns: None,
        }
    }

    /// Attaches a profiler: `measure_batch` then records the batch-loop
    /// span shape the flight recorder attributes (`batch` with
    /// `spawn`/`collect`/`merge` children on the calling lane, a
    /// `worker` root per OS thread with `dispatch`/`estimate` children)
    /// and feeds the `eval_ns` / `batch_fanout_ns` / `batch_join_ns`
    /// histograms. With the default disabled profiler every
    /// instrumentation point is a single branch — the measured results
    /// are identical either way (the determinism tests in `s2fa-dse`
    /// pin this).
    pub fn with_profiler(mut self, profiler: &Profiler) -> Self {
        self.profiler = profiler.clone();
        self.lane = profiler.lane();
        if let Some(metrics) = profiler.metrics() {
            self.eval_ns = Some(metrics.histogram("eval_ns"));
            self.fanout_ns = Some(metrics.histogram("batch_fanout_ns"));
            self.join_ns = Some(metrics.histogram("batch_join_ns"));
        }
        self
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Flushes buffered spans to the profiler (a no-op when disabled).
    pub fn flush_profile(&mut self) {
        self.lane.flush();
    }
}

impl Objective for ThreadedObjective<'_> {
    fn measure(&mut self, config: &Config) -> Measurement {
        (self.eval)(config)
    }

    fn measure_batch(&mut self, configs: &[Config]) -> Vec<Measurement> {
        let workers = self.threads.min(configs.len());
        if workers <= 1 {
            // Serial path: the whole batch is one `estimate` phase.
            let batch_id = self.lane.open("batch");
            let est_id = self.lane.open("estimate");
            let out = if let Some(hist) = &self.eval_ns {
                configs
                    .iter()
                    .map(|c| {
                        let t0 = Instant::now();
                        let m = (self.eval)(c);
                        hist.record(t0.elapsed().as_nanos() as u64);
                        m
                    })
                    .collect()
            } else {
                configs.iter().map(self.eval).collect()
            };
            self.lane.close(est_id);
            self.lane.close(batch_id);
            return out;
        }
        let cursor = AtomicUsize::new(0);
        let mut results: Vec<Option<Measurement>> = vec![None; configs.len()];
        let eval = self.eval;
        let profiler = &self.profiler;
        let eval_ns = &self.eval_ns;
        let fanout_ns = &self.fanout_ns;
        let join_ns = &self.join_ns;
        let lane = &mut self.lane;
        let batch_id = lane.open("batch");
        let chunks = std::thread::scope(|scope| {
            let spawn_id = lane.open("spawn");
            let fanout_t0 = fanout_ns.as_ref().map(|_| Instant::now());
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let mut wlane = profiler.lane();
                        let wid = wlane.open("worker");
                        let w_start = wlane.now_ns();
                        // One decision per batch, not per eval: the
                        // disabled path never reads a clock.
                        let timing = wlane.enabled() || eval_ns.is_some();
                        let mut est_ns = 0u64;
                        let mut out = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= configs.len() {
                                break;
                            }
                            let m = if timing {
                                let t0 = Instant::now();
                                let m = eval(&configs[i]);
                                let dt = t0.elapsed().as_nanos() as u64;
                                est_ns += dt;
                                if let Some(h) = eval_ns {
                                    h.record(dt);
                                }
                                m
                            } else {
                                eval(&configs[i])
                            };
                            out.push((i, m));
                        }
                        if wlane.enabled() {
                            // The worker's interval partitions exactly
                            // into estimator time (accumulated) and
                            // everything else — cursor pulls, result
                            // pushes, loop bookkeeping — which is what
                            // `dispatch` means in the flight record.
                            let w_end = wlane.now_ns();
                            let dispatch = (w_end - w_start).saturating_sub(est_ns);
                            wlane.record("dispatch", w_start, w_start + dispatch);
                            wlane.record("estimate", w_start + dispatch, w_end);
                            wlane.close(wid);
                        }
                        out
                    })
                })
                .collect();
            lane.close(spawn_id);
            if let (Some(h), Some(t0)) = (fanout_ns, fanout_t0) {
                h.record(t0.elapsed().as_nanos() as u64);
            }
            let collect_id = lane.open("collect");
            let join_t0 = join_ns.as_ref().map(|_| Instant::now());
            let chunks = handles
                .into_iter()
                .map(|h| h.join().expect("objective worker panicked"))
                .collect::<Vec<_>>();
            lane.close(collect_id);
            if let (Some(h), Some(t0)) = (join_ns, join_t0) {
                h.record(t0.elapsed().as_nanos() as u64);
            }
            chunks
        });
        let merge_id = lane.open("merge");
        for (i, m) in chunks.into_iter().flatten() {
            results[i] = Some(m);
        }
        let out: Vec<Measurement> = results
            .into_iter()
            .map(|m| m.expect("every index measured"))
            .collect();
        lane.close(merge_id);
        lane.close(batch_id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value_of(c: &Config) -> f64 {
        c.iter().map(|&v| v as f64).sum::<f64>() + 1.0
    }

    #[test]
    fn closures_are_objectives() {
        let mut calls = 0;
        let mut obj = |c: &Config| {
            calls += 1;
            Measurement::new(value_of(c), 1.0)
        };
        let configs = vec![vec![1, 2], vec![3, 4]];
        let ms = Objective::measure_batch(&mut obj, &configs);
        assert_eq!(calls, 2);
        assert_eq!(ms[0].value, 4.0);
        assert_eq!(ms[1].value, 8.0);
    }

    #[test]
    fn threaded_matches_serial_in_order() {
        let eval = |c: &Config| Measurement::new(value_of(c), c[0] as f64);
        let configs: Vec<Config> = (0..37u32).map(|i| vec![i, i * 2]).collect();
        let serial: Vec<Measurement> = configs.iter().map(eval).collect();
        for threads in [1, 2, 8, 64] {
            let mut obj = ThreadedObjective::new(&eval, threads);
            assert_eq!(obj.measure_batch(&configs), serial, "threads={threads}");
        }
    }

    #[test]
    fn threaded_handles_small_batches() {
        let eval = |c: &Config| Measurement::new(value_of(c), 1.0);
        let mut obj = ThreadedObjective::new(&eval, 8);
        assert!(obj.measure_batch(&[]).is_empty());
        let one = obj.measure_batch(&[vec![5]]);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].value, 6.0);
    }

    #[test]
    fn threads_clamped_to_one() {
        let eval = |c: &Config| Measurement::new(value_of(c), 1.0);
        let obj = ThreadedObjective::new(&eval, 0);
        assert_eq!(obj.threads(), 1);
    }

    #[test]
    fn profiled_batches_record_the_flight_shape() {
        let eval = |c: &Config| Measurement::new(value_of(c), 1.0);
        let configs: Vec<Config> = (0..16u32).map(|i| vec![i]).collect();
        let serial: Vec<Measurement> = configs.iter().map(eval).collect();
        let profiler = Profiler::enabled();
        let mut obj = ThreadedObjective::new(&eval, 4).with_profiler(&profiler);
        assert_eq!(obj.measure_batch(&configs), serial, "results unchanged");
        obj.flush_profile();
        let spans = profiler.take_spans();
        s2fa_obs::verify_spans(&spans).expect("well-formed span forest");
        let count = |name: &str| spans.iter().filter(|s| s.name == name).count();
        assert_eq!(count("batch"), 1);
        assert_eq!(count("spawn"), 1);
        assert_eq!(count("collect"), 1);
        assert_eq!(count("merge"), 1);
        assert_eq!(count("worker"), 4);
        assert_eq!(count("dispatch"), 4);
        assert_eq!(count("estimate"), 4);
        let metrics = profiler.metrics().unwrap().snapshot();
        assert_eq!(metrics.histograms["eval_ns"].count, 16);
        assert_eq!(metrics.histograms["batch_fanout_ns"].count, 1);
        assert_eq!(metrics.histograms["batch_join_ns"].count, 1);
    }

    #[test]
    fn profiled_serial_path_is_one_estimate_phase() {
        let eval = |c: &Config| Measurement::new(value_of(c), 1.0);
        let profiler = Profiler::enabled();
        let mut obj = ThreadedObjective::new(&eval, 1).with_profiler(&profiler);
        obj.measure_batch(&[vec![1], vec![2], vec![3]]);
        obj.flush_profile();
        let spans = profiler.take_spans();
        s2fa_obs::verify_spans(&spans).unwrap();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"batch"));
        assert!(names.contains(&"estimate"));
        assert!(!names.contains(&"spawn"), "no fan-out phases when serial");
        assert_eq!(
            profiler.metrics().unwrap().snapshot().histograms["eval_ns"].count,
            3
        );
    }

    #[test]
    fn metrics_only_mode_feeds_histograms_without_spans() {
        let eval = |c: &Config| Measurement::new(value_of(c), 1.0);
        let profiler = Profiler::metrics_only();
        let configs: Vec<Config> = (0..8u32).map(|i| vec![i]).collect();
        let mut obj = ThreadedObjective::new(&eval, 2).with_profiler(&profiler);
        obj.measure_batch(&configs);
        obj.flush_profile();
        assert!(profiler.take_spans().is_empty());
        assert_eq!(
            profiler.metrics().unwrap().snapshot().histograms["eval_ns"].count,
            8
        );
    }
}
