//! The objective-function interface.
//!
//! [`TuningRun`](crate::TuningRun) proposes whole batches of candidates
//! before it looks at any result (footnote 3's top-k-per-iteration
//! semantics), which makes the batch the natural unit of *real*
//! parallelism: every configuration in a batch can be measured on its own
//! OS thread without changing what the search observes.
//!
//! [`Objective`] captures that contract. `measure` evaluates one
//! configuration; `measure_batch` evaluates a slice and returns
//! measurements **in input order** — the driver replays its bookkeeping
//! (bandit rewards, trace events, the virtual clock) sequentially over
//! that vector, so an `Objective` may reorder the *work* freely as long as
//! it never reorders the *results*. Any `FnMut(&Config) -> Measurement`
//! closure is an `Objective` via the blanket impl, measuring serially.
//!
//! [`ThreadedObjective`] is the parallel implementation: it submits the
//! batch to a persistent [`WorkerPool`] as contiguous index chunks (and
//! helps execute them on the calling thread), then the measurements land
//! by index in a pre-sized buffer. Because each configuration's
//! measurement is a pure function of the configuration, the result
//! vector is identical to the serial one no matter how the pool
//! schedules the chunks — and because the workers persist across
//! batches, no per-batch OS-thread spawn cost is paid (the inversion
//! PR 6's flight recorder diagnosed).

use crate::history::Measurement;
use crate::param::Config;
use s2fa_engine::WorkerPool;
use s2fa_obs::{Histogram, Lane, Profiler};
use std::sync::Arc;
use std::time::Instant;

/// A raw results pointer that may cross threads: every chunk writes a
/// disjoint index range, so concurrent writers never alias.
#[derive(Clone, Copy)]
struct ResultsPtr(*mut Option<Measurement>);
unsafe impl Send for ResultsPtr {}
unsafe impl Sync for ResultsPtr {}

impl ResultsPtr {
    /// # Safety
    /// `i` must be in bounds of the backing buffer, written by exactly
    /// one thread, and the buffer must outlive the write.
    unsafe fn write(self, i: usize, m: Measurement) {
        unsafe { *self.0.add(i) = Some(m) };
    }
}

/// Something that can measure design points ("run HLS on them").
pub trait Objective {
    /// Measures one configuration.
    fn measure(&mut self, config: &Config) -> Measurement;

    /// Measures a batch, returning measurements in input order.
    ///
    /// The default implementation measures serially; implementations may
    /// parallelize as long as `result[i]` corresponds to `configs[i]` and
    /// equals what `measure(&configs[i])` would have returned.
    fn measure_batch(&mut self, configs: &[Config]) -> Vec<Measurement> {
        configs.iter().map(|c| self.measure(c)).collect()
    }
}

impl<F: FnMut(&Config) -> Measurement> Objective for F {
    fn measure(&mut self, config: &Config) -> Measurement {
        self(config)
    }
}

/// An [`Objective`] that measures batches on a persistent worker pool.
///
/// Wraps a thread-safe evaluation function (`Fn + Sync` — e.g. a closure
/// over an `EvalEngine`) and a thread count. Batches are submitted to a
/// [`WorkerPool`] as contiguous chunks claimed first-come-first-served
/// via the pool's atomic cursor, so executors stay busy even when
/// per-point costs vary; the calling thread is always one of the
/// executors ([`JobHandle::help`](s2fa_engine::JobHandle::help)).
/// Results are written back by index, keeping the output order — and
/// therefore every downstream decision of the tuning run — identical to
/// a serial evaluation.
///
/// Share one pool across objectives with [`with_pool`](Self::with_pool)
/// (the DSE driver spawns one per run); otherwise the first multi-thread
/// batch lazily spawns an owned pool of `threads - 1` workers, reused
/// for the objective's lifetime.
pub struct ThreadedObjective<'a> {
    eval: &'a (dyn Fn(&Config) -> Measurement + Sync),
    threads: usize,
    /// Chunk size per work-unit; 0 picks [`WorkerPool::auto_chunk`].
    chunk: usize,
    pool: Option<Arc<WorkerPool>>,
    profiler: Profiler,
    lane: Lane,
    eval_ns: Option<Arc<Histogram>>,
    fanout_ns: Option<Arc<Histogram>>,
    join_ns: Option<Arc<Histogram>>,
}

impl<'a> ThreadedObjective<'a> {
    /// Wraps `eval`, measuring batches on up to `threads` executors
    /// (clamped to at least 1). Profiling is off; see
    /// [`with_profiler`](Self::with_profiler).
    pub fn new(eval: &'a (dyn Fn(&Config) -> Measurement + Sync), threads: usize) -> Self {
        ThreadedObjective {
            eval,
            threads: threads.max(1),
            chunk: 0,
            pool: None,
            profiler: Profiler::disabled(),
            lane: Profiler::disabled().lane(),
            eval_ns: None,
            fanout_ns: None,
            join_ns: None,
        }
    }

    /// Attaches a profiler: `measure_batch` then records the batch-loop
    /// span shape the flight recorder attributes (`batch` with
    /// `submit`/`estimate`/`wait`/`merge` children on the calling lane,
    /// plus a `pool_chunk` root span per worker-executed chunk) and
    /// feeds the `eval_ns` / `batch_fanout_ns` / `batch_join_ns`
    /// histograms. With the default disabled profiler every
    /// instrumentation point is a single branch — the measured results
    /// are identical either way (the determinism tests in `s2fa-dse`
    /// pin this).
    pub fn with_profiler(mut self, profiler: &Profiler) -> Self {
        self.profiler = profiler.clone();
        self.lane = profiler.lane();
        if let Some(metrics) = profiler.metrics() {
            self.eval_ns = Some(metrics.histogram("eval_ns"));
            self.fanout_ns = Some(metrics.histogram("batch_fanout_ns"));
            self.join_ns = Some(metrics.histogram("batch_join_ns"));
        }
        self
    }

    /// Shares a persistent pool: batches are fanned out to its workers
    /// (plus the calling thread) instead of an owned pool.
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Sets the chunk size handed to each executor claim (0 = auto).
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk;
        self
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Flushes buffered spans to the profiler (a no-op when disabled).
    pub fn flush_profile(&mut self) {
        self.lane.flush();
    }
}

impl Objective for ThreadedObjective<'_> {
    fn measure(&mut self, config: &Config) -> Measurement {
        (self.eval)(config)
    }

    fn measure_batch(&mut self, configs: &[Config]) -> Vec<Measurement> {
        let workers = self.threads.min(configs.len());
        if workers <= 1 {
            // Serial path: the whole batch is one `estimate` phase.
            let batch_id = self.lane.open("batch");
            let est_id = self.lane.open("estimate");
            let out = if let Some(hist) = &self.eval_ns {
                configs
                    .iter()
                    .map(|c| {
                        let t0 = Instant::now();
                        let m = (self.eval)(c);
                        hist.record(t0.elapsed().as_nanos() as u64);
                        m
                    })
                    .collect()
            } else {
                configs.iter().map(self.eval).collect()
            };
            self.lane.close(est_id);
            self.lane.close(batch_id);
            return out;
        }
        // Lazily spawn an owned pool on the first parallel batch; a pool
        // attached via `with_pool` always wins. Workers persist across
        // batches either way — submission is a queue push, not a spawn.
        if self.pool.is_none() {
            self.pool = Some(Arc::new(WorkerPool::new(self.threads - 1)));
        }
        let pool = Arc::clone(self.pool.as_ref().expect("pool just ensured"));
        let executors = pool.workers() + 1;
        let chunk = if self.chunk > 0 {
            self.chunk
        } else {
            WorkerPool::auto_chunk(configs.len(), executors)
        };

        let mut results: Vec<Option<Measurement>> = vec![None; configs.len()];
        let results_ptr = ResultsPtr(results.as_mut_ptr());
        let eval = self.eval;
        let profiler = &self.profiler;
        let eval_ns = &self.eval_ns;
        let spans_on = self.profiler.spans_enabled();
        let task = move |start: usize, end: usize, is_worker: bool| {
            // Worker-side chunks get their own root span on a fresh
            // lane; caller-side chunks are covered by the caller's
            // `estimate` span. The disabled path opens no lane and
            // reads no clock.
            let mut wlane = (is_worker && spans_on).then(|| profiler.lane());
            let wid = wlane.as_mut().map(|l| l.open("pool_chunk"));
            for (i, config) in configs.iter().enumerate().take(end).skip(start) {
                let m = if let Some(h) = eval_ns {
                    let t0 = Instant::now();
                    let m = eval(config);
                    h.record(t0.elapsed().as_nanos() as u64);
                    m
                } else {
                    eval(config)
                };
                // SAFETY: chunks cover disjoint index ranges and every
                // index is claimed exactly once, so no two writers alias
                // and the buffer outlives the job (waited below).
                unsafe { results_ptr.write(i, m) }
            }
            if let (Some(l), Some(id)) = (wlane.as_mut(), wid) {
                l.close(id);
            }
        };

        let fanout_ns = &self.fanout_ns;
        let join_ns = &self.join_ns;
        let lane = &mut self.lane;
        let batch_id = lane.open("batch");
        let submit_id = lane.open("submit");
        let fanout_t0 = fanout_ns.as_ref().map(|_| Instant::now());
        let handle = pool.submit(configs.len(), chunk, &task);
        lane.close(submit_id);
        if let (Some(h), Some(t0)) = (fanout_ns, fanout_t0) {
            h.record(t0.elapsed().as_nanos() as u64);
        }
        // The caller is the pool's extra executor: its chunks run inside
        // its own `estimate` span.
        let est_id = lane.open("estimate");
        handle.help();
        lane.close(est_id);
        let wait_id = lane.open("wait");
        let join_t0 = join_ns.as_ref().map(|_| Instant::now());
        handle.wait();
        lane.close(wait_id);
        if let (Some(h), Some(t0)) = (join_ns, join_t0) {
            h.record(t0.elapsed().as_nanos() as u64);
        }
        let merge_id = lane.open("merge");
        let out: Vec<Measurement> = results
            .into_iter()
            .map(|m| m.expect("every index measured"))
            .collect();
        lane.close(merge_id);
        lane.close(batch_id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value_of(c: &Config) -> f64 {
        c.iter().map(|&v| v as f64).sum::<f64>() + 1.0
    }

    #[test]
    fn closures_are_objectives() {
        let mut calls = 0;
        let mut obj = |c: &Config| {
            calls += 1;
            Measurement::new(value_of(c), 1.0)
        };
        let configs = vec![vec![1, 2], vec![3, 4]];
        let ms = Objective::measure_batch(&mut obj, &configs);
        assert_eq!(calls, 2);
        assert_eq!(ms[0].value, 4.0);
        assert_eq!(ms[1].value, 8.0);
    }

    #[test]
    fn threaded_matches_serial_in_order() {
        let eval = |c: &Config| Measurement::new(value_of(c), c[0] as f64);
        let configs: Vec<Config> = (0..37u32).map(|i| vec![i, i * 2]).collect();
        let serial: Vec<Measurement> = configs.iter().map(eval).collect();
        for threads in [1, 2, 8, 64] {
            let mut obj = ThreadedObjective::new(&eval, threads);
            assert_eq!(obj.measure_batch(&configs), serial, "threads={threads}");
        }
    }

    #[test]
    fn threaded_handles_small_batches() {
        let eval = |c: &Config| Measurement::new(value_of(c), 1.0);
        let mut obj = ThreadedObjective::new(&eval, 8);
        assert!(obj.measure_batch(&[]).is_empty());
        let one = obj.measure_batch(&[vec![5]]);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].value, 6.0);
    }

    #[test]
    fn threads_clamped_to_one() {
        let eval = |c: &Config| Measurement::new(value_of(c), 1.0);
        let obj = ThreadedObjective::new(&eval, 0);
        assert_eq!(obj.threads(), 1);
    }

    #[test]
    fn profiled_batches_record_the_flight_shape() {
        let eval = |c: &Config| Measurement::new(value_of(c), 1.0);
        let configs: Vec<Config> = (0..16u32).map(|i| vec![i]).collect();
        let serial: Vec<Measurement> = configs.iter().map(eval).collect();
        let profiler = Profiler::enabled();
        let mut obj = ThreadedObjective::new(&eval, 4)
            .with_chunk(2)
            .with_profiler(&profiler);
        assert_eq!(obj.measure_batch(&configs), serial, "results unchanged");
        obj.flush_profile();
        let spans = profiler.take_spans();
        s2fa_obs::verify_spans(&spans).expect("well-formed span forest");
        let count = |name: &str| spans.iter().filter(|s| s.name == name).count();
        assert_eq!(count("batch"), 1);
        assert_eq!(count("submit"), 1);
        assert_eq!(count("estimate"), 1, "the caller's own chunk window");
        assert_eq!(count("wait"), 1);
        assert_eq!(count("merge"), 1);
        // Which executor claims each of the 8 chunks is scheduling-
        // dependent; only worker-claimed chunks get a root span.
        assert!(count("pool_chunk") <= 8);
        for legacy in ["spawn", "collect", "worker", "dispatch"] {
            assert_eq!(count(legacy), 0, "pre-pool stage {legacy} resurfaced");
        }
        let metrics = profiler.metrics().unwrap().snapshot();
        assert_eq!(metrics.histograms["eval_ns"].count, 16);
        assert_eq!(metrics.histograms["batch_fanout_ns"].count, 1);
        assert_eq!(metrics.histograms["batch_join_ns"].count, 1);
    }

    #[test]
    fn profiled_serial_path_is_one_estimate_phase() {
        let eval = |c: &Config| Measurement::new(value_of(c), 1.0);
        let profiler = Profiler::enabled();
        let mut obj = ThreadedObjective::new(&eval, 1).with_profiler(&profiler);
        obj.measure_batch(&[vec![1], vec![2], vec![3]]);
        obj.flush_profile();
        let spans = profiler.take_spans();
        s2fa_obs::verify_spans(&spans).unwrap();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"batch"));
        assert!(names.contains(&"estimate"));
        assert!(!names.contains(&"submit"), "no fan-out phases when serial");
        assert!(!names.contains(&"wait"));
        assert_eq!(
            profiler.metrics().unwrap().snapshot().histograms["eval_ns"].count,
            3
        );
    }

    #[test]
    fn shared_pool_reused_across_batches_and_objectives() {
        let eval = |c: &Config| Measurement::new(value_of(c), 1.0);
        let configs: Vec<Config> = (0..48u32).map(|i| vec![i]).collect();
        let serial: Vec<Measurement> = configs.iter().map(eval).collect();
        let pool = Arc::new(WorkerPool::new(3));
        for _ in 0..3 {
            let mut obj = ThreadedObjective::new(&eval, 4)
                .with_pool(Arc::clone(&pool))
                .with_chunk(5);
            for _ in 0..4 {
                assert_eq!(obj.measure_batch(&configs), serial);
            }
        }
        let stats = pool.stats();
        assert_eq!(stats.jobs, 12, "every batch was one pool job");
        assert_eq!(stats.chunks, 12 * 10, "48 items / chunk 5 = 10 chunks");
    }

    #[test]
    fn metrics_only_mode_feeds_histograms_without_spans() {
        let eval = |c: &Config| Measurement::new(value_of(c), 1.0);
        let profiler = Profiler::metrics_only();
        let configs: Vec<Config> = (0..8u32).map(|i| vec![i]).collect();
        let mut obj = ThreadedObjective::new(&eval, 2).with_profiler(&profiler);
        obj.measure_batch(&configs);
        obj.flush_profile();
        assert!(profiler.take_spans().is_empty());
        assert_eq!(
            profiler.metrics().unwrap().snapshot().histograms["eval_ns"].count,
            8
        );
    }
}
