//! The objective-function interface.
//!
//! [`TuningRun`](crate::TuningRun) proposes whole batches of candidates
//! before it looks at any result (footnote 3's top-k-per-iteration
//! semantics), which makes the batch the natural unit of *real*
//! parallelism: every configuration in a batch can be measured on its own
//! OS thread without changing what the search observes.
//!
//! [`Objective`] captures that contract. `measure` evaluates one
//! configuration; `measure_batch` evaluates a slice and returns
//! measurements **in input order** — the driver replays its bookkeeping
//! (bandit rewards, trace events, the virtual clock) sequentially over
//! that vector, so an `Objective` may reorder the *work* freely as long as
//! it never reorders the *results*. Any `FnMut(&Config) -> Measurement`
//! closure is an `Objective` via the blanket impl, measuring serially.
//!
//! [`ThreadedObjective`] is the parallel implementation: it fans a batch
//! out over scoped OS threads pulling indices from a shared counter
//! (first-come-first-served), then reassembles the measurements by index.
//! Because each configuration's measurement is a pure function of the
//! configuration, the result vector is identical to the serial one no
//! matter how the OS schedules the threads.

use crate::history::Measurement;
use crate::param::Config;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Something that can measure design points ("run HLS on them").
pub trait Objective {
    /// Measures one configuration.
    fn measure(&mut self, config: &Config) -> Measurement;

    /// Measures a batch, returning measurements in input order.
    ///
    /// The default implementation measures serially; implementations may
    /// parallelize as long as `result[i]` corresponds to `configs[i]` and
    /// equals what `measure(&configs[i])` would have returned.
    fn measure_batch(&mut self, configs: &[Config]) -> Vec<Measurement> {
        configs.iter().map(|c| self.measure(c)).collect()
    }
}

impl<F: FnMut(&Config) -> Measurement> Objective for F {
    fn measure(&mut self, config: &Config) -> Measurement {
        self(config)
    }
}

/// An [`Objective`] that measures batches on real OS threads.
///
/// Wraps a thread-safe evaluation function (`Fn + Sync` — e.g. a closure
/// over an `EvalEngine`) and a thread count. Batches are distributed
/// first-come-first-served via an atomic cursor, so threads stay busy even
/// when per-point costs vary; results are written back by index, keeping
/// the output order — and therefore every downstream decision of the
/// tuning run — identical to a serial evaluation.
pub struct ThreadedObjective<'a> {
    eval: &'a (dyn Fn(&Config) -> Measurement + Sync),
    threads: usize,
}

impl<'a> ThreadedObjective<'a> {
    /// Wraps `eval`, measuring batches on up to `threads` OS threads
    /// (clamped to at least 1).
    pub fn new(eval: &'a (dyn Fn(&Config) -> Measurement + Sync), threads: usize) -> Self {
        ThreadedObjective {
            eval,
            threads: threads.max(1),
        }
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Objective for ThreadedObjective<'_> {
    fn measure(&mut self, config: &Config) -> Measurement {
        (self.eval)(config)
    }

    fn measure_batch(&mut self, configs: &[Config]) -> Vec<Measurement> {
        let workers = self.threads.min(configs.len());
        if workers <= 1 {
            return configs.iter().map(self.eval).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut results: Vec<Option<Measurement>> = vec![None; configs.len()];
        let chunks = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let eval = self.eval;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= configs.len() {
                                break;
                            }
                            out.push((i, eval(&configs[i])));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("objective worker panicked"))
                .collect::<Vec<_>>()
        });
        for (i, m) in chunks.into_iter().flatten() {
            results[i] = Some(m);
        }
        results
            .into_iter()
            .map(|m| m.expect("every index measured"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value_of(c: &Config) -> f64 {
        c.iter().map(|&v| v as f64).sum::<f64>() + 1.0
    }

    #[test]
    fn closures_are_objectives() {
        let mut calls = 0;
        let mut obj = |c: &Config| {
            calls += 1;
            Measurement::new(value_of(c), 1.0)
        };
        let configs = vec![vec![1, 2], vec![3, 4]];
        let ms = Objective::measure_batch(&mut obj, &configs);
        assert_eq!(calls, 2);
        assert_eq!(ms[0].value, 4.0);
        assert_eq!(ms[1].value, 8.0);
    }

    #[test]
    fn threaded_matches_serial_in_order() {
        let eval = |c: &Config| Measurement::new(value_of(c), c[0] as f64);
        let configs: Vec<Config> = (0..37u32).map(|i| vec![i, i * 2]).collect();
        let serial: Vec<Measurement> = configs.iter().map(eval).collect();
        for threads in [1, 2, 8, 64] {
            let mut obj = ThreadedObjective::new(&eval, threads);
            assert_eq!(obj.measure_batch(&configs), serial, "threads={threads}");
        }
    }

    #[test]
    fn threaded_handles_small_batches() {
        let eval = |c: &Config| Measurement::new(value_of(c), 1.0);
        let mut obj = ThreadedObjective::new(&eval, 8);
        assert!(obj.measure_batch(&[]).is_empty());
        let one = obj.measure_batch(&[vec![5]]);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].value, 6.0);
    }

    #[test]
    fn threads_clamped_to_one() {
        let eval = |c: &Config| Measurement::new(value_of(c), 1.0);
        let obj = ThreadedObjective::new(&eval, 0);
        assert_eq!(obj.threads(), 1);
    }
}
