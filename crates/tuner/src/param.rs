//! Parameter space model.
//!
//! Every tunable factor is a [`ParamDef`] with a finite ordered domain; a
//! [`Config`] stores one *index* per parameter. Index encoding keeps the
//! search techniques generic: mutation moves an index, differential
//! evolution does index arithmetic, and decoded values (e.g. powers of two
//! for unroll factors) are recovered through [`ParamDef::value_at`].

use rand::Rng;

/// A design point: one domain index per parameter of the space.
pub type Config = Vec<u32>;

/// The domain shape of one tunable parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamKind {
    /// Powers of two from `min` to `max` inclusive (e.g. unroll factors,
    /// buffer bit-widths). Index 0 ↦ `min`, index k ↦ `min · 2^k`.
    PowerOfTwo {
        /// Smallest value (a power of two).
        min: u32,
        /// Largest value (a power of two ≥ `min`).
        max: u32,
    },
    /// A categorical choice with `n` alternatives (e.g. pipeline
    /// off/on/flatten). Index is the value.
    Enum {
        /// Number of alternatives.
        n: u32,
    },
    /// Integer range `lo..=hi`, unit step. Index k ↦ `lo + k`.
    IntRange {
        /// Inclusive lower bound.
        lo: u32,
        /// Inclusive upper bound.
        hi: u32,
    },
}

impl ParamKind {
    /// Number of values in the domain.
    pub fn cardinality(&self) -> u32 {
        match self {
            ParamKind::PowerOfTwo { min, max } => {
                if max < min {
                    0
                } else {
                    (max.ilog2() - min.ilog2()) + 1
                }
            }
            ParamKind::Enum { n } => *n,
            ParamKind::IntRange { lo, hi } => hi - lo + 1,
        }
    }

    /// Decoded value at a domain index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of the domain.
    pub fn value_at(&self, idx: u32) -> u32 {
        assert!(idx < self.cardinality(), "index {idx} out of domain");
        match self {
            ParamKind::PowerOfTwo { min, .. } => min << idx,
            ParamKind::Enum { .. } => idx,
            ParamKind::IntRange { lo, .. } => lo + idx,
        }
    }
}

/// A named tunable parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDef {
    /// Stable name (e.g. `L1.parallel`, `in_1.bits`).
    pub name: String,
    /// Domain shape.
    pub kind: ParamKind,
}

impl ParamDef {
    /// Creates a parameter.
    pub fn new(name: impl Into<String>, kind: ParamKind) -> Self {
        ParamDef {
            name: name.into(),
            kind,
        }
    }

    /// Number of values in the domain.
    pub fn cardinality(&self) -> u32 {
        self.kind.cardinality()
    }

    /// Decoded value at a domain index.
    pub fn value_at(&self, idx: u32) -> u32 {
        self.kind.value_at(idx)
    }
}

/// A (sub-)space: parameters plus per-parameter index bounds.
///
/// The full space has bounds `[0, cardinality)`; a DSE partition narrows
/// some bounds (see `s2fa-dse`'s decision-tree partitioner).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpace {
    params: Vec<ParamDef>,
    /// Inclusive index bounds `(lo, hi)` per parameter.
    bounds: Vec<(u32, u32)>,
}

impl SearchSpace {
    /// A space over the full domain of every parameter.
    pub fn new(params: Vec<ParamDef>) -> Self {
        let bounds = params
            .iter()
            .map(|p| (0, p.cardinality().saturating_sub(1)))
            .collect();
        SearchSpace { params, bounds }
    }

    /// The parameters.
    pub fn params(&self) -> &[ParamDef] {
        &self.params
    }

    /// Index of the parameter named `name`.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }

    /// Current inclusive bounds of parameter `i`.
    pub fn bounds(&self, i: usize) -> (u32, u32) {
        self.bounds[i]
    }

    /// Returns a copy of this space with parameter `i` restricted to the
    /// inclusive index range `[lo, hi]` (intersected with current bounds).
    /// A disjoint range collapses onto the nearest in-bounds point, so the
    /// result is never empty or inverted.
    pub fn restricted(&self, i: usize, lo: u32, hi: u32) -> SearchSpace {
        let mut s = self.clone();
        let (cur_lo, cur_hi) = s.bounds[i];
        let new_lo = cur_lo.max(lo).min(cur_hi);
        let new_hi = cur_hi.min(hi).max(new_lo);
        s.bounds[i] = (new_lo, new_hi);
        s
    }

    /// True if `cfg` lies inside every bound.
    pub fn contains(&self, cfg: &Config) -> bool {
        cfg.len() == self.params.len()
            && cfg
                .iter()
                .zip(&self.bounds)
                .all(|(&v, &(lo, hi))| v >= lo && v <= hi)
    }

    /// Clamps `cfg` into the bounds.
    pub fn clamp(&self, cfg: &mut Config) {
        for (v, &(lo, hi)) in cfg.iter_mut().zip(&self.bounds) {
            *v = (*v).clamp(lo, hi);
        }
    }

    /// Draws a uniform random configuration.
    pub fn random(&self, rng: &mut impl Rng) -> Config {
        self.bounds
            .iter()
            .map(|&(lo, hi)| rng.gen_range(lo..=hi))
            .collect()
    }

    /// Mutates one uniformly-chosen parameter to a new in-bounds value;
    /// returns the index mutated (or `None` if every domain is a single
    /// point).
    pub fn mutate_one(&self, cfg: &mut Config, rng: &mut impl Rng) -> Option<usize> {
        let movable: Vec<usize> = self
            .bounds
            .iter()
            .enumerate()
            .filter(|(_, &(lo, hi))| hi > lo)
            .map(|(i, _)| i)
            .collect();
        if movable.is_empty() {
            return None;
        }
        let i = movable[rng.gen_range(0..movable.len())];
        let (lo, hi) = self.bounds[i];
        loop {
            let v = rng.gen_range(lo..=hi);
            if v != cfg[i] {
                cfg[i] = v;
                return Some(i);
            }
        }
    }

    /// Base-10 logarithm of the number of points in the space (the sizes
    /// in Table 1 overflow u64 — the S-W space exceeds 10^15 points).
    pub fn size_log10(&self) -> f64 {
        self.bounds
            .iter()
            .map(|&(lo, hi)| ((hi - lo + 1) as f64).log10())
            .sum()
    }

    /// Number of points if it fits in `u64`.
    pub fn size(&self) -> Option<u64> {
        let mut total: u64 = 1;
        for &(lo, hi) in &self.bounds {
            total = total.checked_mul((hi - lo + 1) as u64)?;
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![
            ParamDef::new("u", ParamKind::PowerOfTwo { min: 1, max: 64 }),
            ParamDef::new("p", ParamKind::Enum { n: 3 }),
            ParamDef::new("t", ParamKind::IntRange { lo: 5, hi: 9 }),
        ])
    }

    #[test]
    fn cardinalities_and_values() {
        let k = ParamKind::PowerOfTwo { min: 1, max: 64 };
        assert_eq!(k.cardinality(), 7);
        assert_eq!(k.value_at(0), 1);
        assert_eq!(k.value_at(6), 64);
        let k = ParamKind::PowerOfTwo { min: 16, max: 512 };
        assert_eq!(k.cardinality(), 6);
        assert_eq!(k.value_at(5), 512);
        assert_eq!(ParamKind::Enum { n: 3 }.cardinality(), 3);
        assert_eq!(ParamKind::IntRange { lo: 5, hi: 9 }.value_at(2), 7);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn value_at_out_of_domain_panics() {
        ParamKind::Enum { n: 2 }.value_at(2);
    }

    #[test]
    fn space_size() {
        let s = space();
        assert_eq!(s.size(), Some(7 * 3 * 5));
        assert!((s.size_log10() - ((7.0f64 * 3.0 * 5.0).log10())).abs() < 1e-12);
    }

    #[test]
    fn restriction_narrows() {
        let s = space();
        let r = s.restricted(0, 2, 4);
        assert_eq!(r.bounds(0), (2, 4));
        assert_eq!(r.size(), Some(3 * 3 * 5));
        // intersecting restrictions
        let r2 = r.restricted(0, 0, 3);
        assert_eq!(r2.bounds(0), (2, 3));
    }

    #[test]
    fn random_and_mutate_respect_bounds() {
        let s = space().restricted(0, 1, 2).restricted(2, 0, 0);
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let mut c = s.random(&mut rng);
            assert!(s.contains(&c));
            let mutated = s.mutate_one(&mut c, &mut rng);
            assert!(s.contains(&c));
            // param 2 is pinned, so it is never the mutated one
            assert_ne!(mutated, Some(2));
        }
    }

    #[test]
    fn mutate_on_singleton_space_returns_none() {
        let s = SearchSpace::new(vec![ParamDef::new("x", ParamKind::Enum { n: 1 })]);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut c = vec![0];
        assert_eq!(s.mutate_one(&mut c, &mut rng), None);
    }

    #[test]
    fn clamp_pulls_into_bounds() {
        let s = space().restricted(1, 1, 1);
        let mut c = vec![99, 0, 99];
        s.clamp(&mut c);
        assert!(s.contains(&c));
        assert_eq!(c[1], 1);
    }
}
