//! The tuning driver with a virtual clock.
//!
//! Reproduces OpenTuner's run loop under the paper's timing regime: each
//! evaluation is an HLS run costing minutes of wall-clock, so the driver
//! charges every measurement's [`Measurement::minutes`] to a virtual clock.
//! With `parallel_evals = k` the driver proposes `k` candidates per
//! iteration and advances the clock by the *slowest* of the batch —
//! footnote 3's "the OpenTuner ... uses the eight cores to evaluate top-8
//! candidates at one iteration".
//!
//! Clock arithmetic is delegated to [`s2fa_trace::BatchClock`]: a batch
//! completes as one unit, so every [`TraceEvent`] of a batch carries the
//! same batch-completion minute. (Events used to be stamped with a running
//! prefix-max of the batch's minutes, which handed out inconsistent,
//! proposal-order-dependent timestamps inside one batch.) Structured
//! events — evaluations, technique pulls/rewards, the stop reason — are
//! additionally emitted through the run's [`TraceSink`]
//! ([`TuningRun::with_sink`]; the default [`NullSink`] drops them).

use crate::bandit::AucBandit;
use crate::history::{History, Measurement};
use crate::objective::Objective;
use crate::param::{Config, SearchSpace};
use crate::stopping::{StopReason, StoppingCriterion};
use crate::technique::{default_portfolio, SearchTechnique};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use s2fa_trace::{BatchClock, Event, NullSink, TechniqueStats, TechniqueTable, TraceSink};
use std::sync::Arc;

/// Options controlling one tuning run.
#[derive(Debug, Clone)]
pub struct TuningOptions {
    /// Virtual wall-clock budget in minutes (the paper caps vanilla
    /// OpenTuner at 4 hours).
    pub budget_minutes: f64,
    /// Candidates evaluated concurrently per iteration.
    pub parallel_evals: usize,
    /// Configurations evaluated before any technique proposes (the DSE's
    /// generated seeds; vanilla uses one random seed).
    pub seeds: Vec<Config>,
    /// RNG seed — runs are fully deterministic given this.
    pub rng_seed: u64,
    /// Hard cap on evaluations (a safety net, not a paper knob).
    pub max_evaluations: u64,
}

impl Default for TuningOptions {
    fn default() -> Self {
        TuningOptions {
            budget_minutes: 240.0,
            parallel_evals: 1,
            seeds: Vec::new(),
            rng_seed: 0xC0FFEE,
            max_evaluations: 100_000,
        }
    }
}

/// One point on the convergence trace (the Fig. 3 series).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual minutes elapsed when the evaluation's *batch* completed —
    /// every event of one batch carries the same minute.
    pub minute: f64,
    /// Iteration (batch) index.
    pub iteration: u64,
    /// Technique that proposed the point (`"seed"` for seeds).
    pub technique: String,
    /// Objective value of the point.
    pub value: f64,
    /// Incumbent best after this point.
    pub best_value: f64,
    /// Whether this point improved the incumbent.
    pub improved: bool,
}

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuningOutcome {
    /// Best configuration and objective found (if any point was feasible).
    pub best: Option<(Config, f64)>,
    /// Full convergence trace.
    pub trace: Vec<TraceEvent>,
    /// Virtual minutes consumed.
    pub elapsed_minutes: f64,
    /// Total evaluations performed.
    pub evaluations: u64,
    /// Evaluations of the final batch that were still in flight when the
    /// budget ran out. Their measurements are *harvested* — recorded into
    /// the history, counted in `evaluations`, eligible to become `best` —
    /// but their trace minutes are clamped to the budget. See the
    /// deadline-kill note in [`TuningRun::run`].
    pub killed_evals: u64,
    /// Batch slots abandoned because proposal could not find an unseen
    /// configuration (16 mutation retries plus one fresh redraw all landed
    /// on evaluated points). A non-zero count means the search was grinding
    /// against an exhausted (sub-)space; the run stops with
    /// [`StopReason::SpaceExhausted`] once a whole batch is lost this way.
    pub exhaustion_events: u64,
    /// Why the run ended.
    pub reason: StopReason,
    /// Per-technique counters (evaluations, improvements, best value),
    /// sorted by technique name; seeds appear as technique `"seed"`.
    pub technique_stats: Vec<TechniqueStats>,
    /// The final history (for post-hoc analysis).
    pub history: History,
}

impl TuningOutcome {
    /// Best objective value, `+inf` if nothing was feasible.
    pub fn best_value(&self) -> f64 {
        self.best.as_ref().map(|(_, v)| *v).unwrap_or(f64::INFINITY)
    }

    /// The trace downsampled to `(minute, best_value)` steps.
    pub fn convergence(&self) -> Vec<(f64, f64)> {
        self.trace
            .iter()
            .map(|e| (e.minute, e.best_value))
            .collect()
    }
}

/// A configured tuning run over one search (sub-)space.
pub struct TuningRun {
    space: SearchSpace,
    options: TuningOptions,
    techniques: Vec<Box<dyn SearchTechnique + Send>>,
    sink: Arc<dyn TraceSink>,
    metrics: Option<RunMetrics>,
}

/// Resolved histogram handles for the run's own hot path (the search
/// loop between evaluations). Resolved once at construction so the loop
/// records lock-free.
struct RunMetrics {
    bandit_pull_ns: Arc<s2fa_obs::Histogram>,
    propose_ns: Arc<s2fa_obs::Histogram>,
    feedback_ns: Arc<s2fa_obs::Histogram>,
}

impl TuningRun {
    /// Creates a run with the paper's default technique portfolio.
    pub fn new(space: SearchSpace, options: TuningOptions) -> Self {
        TuningRun {
            space,
            options,
            techniques: default_portfolio(),
            sink: Arc::new(NullSink),
            metrics: None,
        }
    }

    /// Replaces the technique portfolio.
    pub fn with_techniques(mut self, techniques: Vec<Box<dyn SearchTechnique + Send>>) -> Self {
        assert!(!techniques.is_empty(), "at least one technique required");
        self.techniques = techniques;
        self
    }

    /// Attaches a structured-event sink. Emission is observational only:
    /// the run's decisions and outcome are identical for any sink.
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = sink;
        self
    }

    /// Attaches a profiler's metrics registry. The run then feeds the
    /// `bandit_pull_ns`, `propose_ns`, and `feedback_ns` latency
    /// histograms — span recording stays with the objective (the run
    /// may execute on any pool thread; only latencies are aggregated
    /// here). Like the sink, purely observational: decisions and
    /// outcome are bit-identical with or without it.
    pub fn with_profiler(mut self, profiler: &s2fa_obs::Profiler) -> Self {
        self.metrics = profiler.metrics().map(|m| RunMetrics {
            bandit_pull_ns: m.histogram("bandit_pull_ns"),
            propose_ns: m.histogram("propose_ns"),
            feedback_ns: m.histogram("feedback_ns"),
        });
        self
    }

    /// Runs to completion.
    ///
    /// `objective` evaluates configurations ("runs HLS"); batches are
    /// handed to [`Objective::measure_batch`], so a parallel objective
    /// (e.g. [`ThreadedObjective`](crate::ThreadedObjective)) measures a
    /// whole iteration concurrently. `stop` is the early-stopping
    /// criterion consulted once per iteration. The run's decisions depend
    /// only on the *order* of batch results, which every `Objective` must
    /// preserve — outcomes are byte-identical across serial and threaded
    /// objectives.
    ///
    /// ## Deadline-kill semantics
    ///
    /// The final batch may straddle the budget: its evaluations were in
    /// flight when the deadline hit. Their measurements are still
    /// harvested — the HLS results existed by the time the driver noticed
    /// the clock, so they are recorded into the history, counted in
    /// `evaluations`, and may become `best` — but the clock and every
    /// trace minute are clamped to the budget, and
    /// [`TuningOutcome::killed_evals`] reports how many evaluations
    /// overran it. `truncate_to_budget` in `s2fa-dse` mirrors exactly
    /// these semantics when it replays a trajectory under a shorter
    /// budget.
    pub fn run(
        mut self,
        objective: &mut dyn Objective,
        stop: &mut dyn StoppingCriterion,
    ) -> TuningOutcome {
        let mut rng = SmallRng::seed_from_u64(self.options.rng_seed);
        let mut bandit = AucBandit::new(self.techniques.len());
        let mut history = History::new();
        let mut trace = Vec::new();
        let mut techniques_seen = TechniqueTable::new();
        let mut clock = BatchClock::new(self.options.budget_minutes);
        let mut evals = 0u64;
        let mut iteration = 0u64;
        let mut exhaustion_events = 0u64;
        let mut reason = StopReason::TimeLimit;

        // Seed evaluations: one batch — the clock advances by the slowest
        // member and every seed event carries the batch-completion minute.
        if !self.options.seeds.is_empty() {
            let mut seeds = std::mem::take(&mut self.options.seeds);
            for seed in seeds.iter_mut() {
                self.space.clamp(seed);
            }
            let measurements = objective.measure_batch(&seeds);
            let minute = clock.complete_batch(measurements.iter().map(|m| m.minutes));
            for (seed, m) in seeds.into_iter().zip(measurements) {
                evals += 1;
                let improved = history.record(seed, m, vec![]);
                record_eval(
                    self.sink.as_ref(),
                    &mut trace,
                    &mut techniques_seen,
                    minute,
                    iteration,
                    "seed",
                    m,
                    &history,
                    improved,
                );
            }
            iteration += 1;
        }

        'outer: while clock.within_budget() && evals < self.options.max_evaluations {
            if stop.should_stop(&history) {
                reason = StopReason::Converged;
                break;
            }
            // Phase 1: propose the whole batch from the *same* history
            // snapshot — parallel workers cannot see each other's pending
            // results (footnote 3: evaluating top-k per iteration "is not
            // scalable in terms of the efficiency").
            let mut batch: Vec<(usize, Config, Vec<usize>)> = Vec::new();
            let mut batch_seen: Vec<Config> = Vec::new();
            let propose_t0 = self.metrics.as_ref().map(|_| std::time::Instant::now());
            for _ in 0..self.options.parallel_evals.max(1) {
                if evals + batch.len() as u64 >= self.options.max_evaluations {
                    break;
                }
                let arm = if let Some(m) = &self.metrics {
                    let t0 = std::time::Instant::now();
                    let arm = bandit.select();
                    m.bandit_pull_ns.record(t0.elapsed().as_nanos() as u64);
                    arm
                } else {
                    bandit.select()
                };
                self.sink.emit(&Event::TechniquePull {
                    technique: self.techniques[arm].name().to_string(),
                    iteration,
                });
                let mut cfg = self.techniques[arm].propose(&self.space, &history, &mut rng);
                // Dedupe against history and the in-flight batch: don't
                // waste an HLS run on a repeat.
                let mut tries = 0;
                while (history.seen(&cfg) || batch_seen.contains(&cfg)) && tries < 16 {
                    self.space.mutate_one(&mut cfg, &mut rng);
                    tries += 1;
                }
                if history.seen(&cfg) || batch_seen.contains(&cfg) {
                    // Space (or partition) is effectively exhausted around
                    // the incumbent — draw fresh.
                    cfg = self.space.random(&mut rng);
                    if history.seen(&cfg) || batch_seen.contains(&cfg) {
                        // The slot is abandoned, not silently: count it so
                        // callers can see how hard the search ground
                        // against an exhausted space.
                        exhaustion_events += 1;
                        continue;
                    }
                }
                let mutated = mutated_params(&history, &cfg);
                batch_seen.push(cfg.clone());
                batch.push((arm, cfg, mutated));
            }
            if let (Some(m), Some(t0)) = (&self.metrics, propose_t0) {
                m.propose_ns.record(t0.elapsed().as_nanos() as u64);
            }
            if batch.is_empty() {
                reason = if evals >= self.options.max_evaluations {
                    StopReason::IterationLimit
                } else {
                    StopReason::SpaceExhausted
                };
                break 'outer;
            }
            // Phase 2: measure the whole batch (possibly on real threads),
            // and only then feed results back, in proposal order. The
            // batch completes as one unit: one clock advance, one shared
            // event minute.
            let configs: Vec<Config> = batch.iter().map(|(_, c, _)| c.clone()).collect();
            let measurements = objective.measure_batch(&configs);
            let minute = clock.complete_batch(measurements.iter().map(|m| m.minutes));
            let feedback_t0 = self.metrics.as_ref().map(|_| std::time::Instant::now());
            for ((arm, cfg, mutated), m) in batch.into_iter().zip(measurements) {
                evals += 1;
                self.techniques[arm].feedback(&cfg, &m);
                let improved = history.record(cfg, m, mutated);
                bandit.reward(arm, improved);
                self.sink.emit(&Event::TechniqueReward {
                    technique: self.techniques[arm].name().to_string(),
                    improved,
                });
                record_eval(
                    self.sink.as_ref(),
                    &mut trace,
                    &mut techniques_seen,
                    minute,
                    iteration,
                    self.techniques[arm].name(),
                    m,
                    &history,
                    improved,
                );
            }
            if let (Some(m), Some(t0)) = (&self.metrics, feedback_t0) {
                m.feedback_ns.record(t0.elapsed().as_nanos() as u64);
            }
            iteration += 1;
        }

        // Deadline kill (see the method docs): count the final batch's
        // overrunning evaluations, then clamp the clock and their event
        // minutes to the budget — the clock never reads past it.
        let killed_evals = trace
            .iter()
            .filter(|e| e.minute > self.options.budget_minutes)
            .count() as u64;
        let elapsed = clock.clamp_to_budget();
        for e in trace.iter_mut() {
            if e.minute > elapsed {
                e.minute = elapsed;
            }
        }

        self.sink.emit(&Event::RunStop {
            minute: elapsed,
            evaluations: evals,
            reason: format!("{reason:?}"),
        });

        TuningOutcome {
            best: history.best().map(|(c, v)| (c.clone(), v)),
            trace,
            elapsed_minutes: elapsed,
            evaluations: evals,
            killed_evals,
            exhaustion_events,
            reason,
            technique_stats: techniques_seen.into_rows(),
            history,
        }
    }
}

/// Factors on which `cfg` differs from the incumbent best (attribution for
/// the entropy stopping criterion).
fn mutated_params(history: &History, cfg: &Config) -> Vec<usize> {
    match history.best() {
        Some((best, _)) => cfg
            .iter()
            .zip(best)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect(),
        None => Vec::new(),
    }
}

/// Books one evaluation everywhere it is observable: the convergence
/// trace, the per-technique counters, and the structured-event sink.
#[allow(clippy::too_many_arguments)]
fn record_eval(
    sink: &dyn TraceSink,
    trace: &mut Vec<TraceEvent>,
    techniques: &mut TechniqueTable,
    minute: f64,
    iteration: u64,
    technique: &str,
    m: Measurement,
    history: &History,
    improved: bool,
) {
    let best_value = history.best().map(|(_, v)| v).unwrap_or(f64::INFINITY);
    techniques.record(technique, m.value, improved);
    sink.emit(&Event::Eval {
        minute,
        partition: None,
        iteration,
        technique: technique.to_string(),
        value: m.value,
        best_value,
        improved,
    });
    trace.push(TraceEvent {
        minute,
        iteration,
        technique: technique.to_string(),
        value: m.value,
        best_value,
        improved,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{ParamDef, ParamKind};
    use crate::stopping::{NoImprovement, TimeLimitOnly};
    use s2fa_trace::RingSink;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![
            ParamDef::new("a", ParamKind::IntRange { lo: 0, hi: 31 }),
            ParamDef::new("b", ParamKind::IntRange { lo: 0, hi: 31 }),
        ])
    }

    fn objective(c: &Config) -> Measurement {
        let v = (c[0] as f64 - 20.0).powi(2) + (c[1] as f64 - 3.0).powi(2) + 1.0;
        Measurement::new(v, 5.0)
    }

    #[test]
    fn finds_good_points_and_respects_budget() {
        let run = TuningRun::new(
            space(),
            TuningOptions {
                budget_minutes: 200.0,
                parallel_evals: 1,
                ..TuningOptions::default()
            },
        );
        let out = run.run(&mut objective, &mut TimeLimitOnly);
        assert!(out.best_value() < 20.0, "best = {}", out.best_value());
        assert!(out.elapsed_minutes >= 200.0);
        assert_eq!(out.reason, StopReason::TimeLimit);
        // 5 minutes per eval, sequential → ~40 evaluations
        assert!(out.evaluations >= 38 && out.evaluations <= 42);
    }

    #[test]
    fn parallel_evals_amortize_the_clock() {
        let seq = TuningRun::new(
            space(),
            TuningOptions {
                budget_minutes: 100.0,
                parallel_evals: 1,
                ..TuningOptions::default()
            },
        )
        .run(&mut objective, &mut TimeLimitOnly);
        let par = TuningRun::new(
            space(),
            TuningOptions {
                budget_minutes: 100.0,
                parallel_evals: 8,
                ..TuningOptions::default()
            },
        )
        .run(&mut objective, &mut TimeLimitOnly);
        assert!(
            par.evaluations >= seq.evaluations * 6,
            "8-wide should evaluate ~8x the points: {} vs {}",
            par.evaluations,
            seq.evaluations
        );
    }

    #[test]
    fn seeds_are_evaluated_first() {
        let run = TuningRun::new(
            space(),
            TuningOptions {
                budget_minutes: 30.0,
                seeds: vec![vec![20, 3], vec![0, 0]],
                ..TuningOptions::default()
            },
        );
        let out = run.run(&mut objective, &mut TimeLimitOnly);
        assert_eq!(out.trace[0].technique, "seed");
        assert_eq!(out.trace[1].technique, "seed");
        // the good seed is optimal; nothing beats value 1.0
        assert!((out.best_value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn early_stopping_fires() {
        let run = TuningRun::new(
            space(),
            TuningOptions {
                budget_minutes: 10_000.0,
                seeds: vec![vec![20, 3]],
                ..TuningOptions::default()
            },
        );
        let out = run.run(&mut objective, &mut NoImprovement::new(5));
        assert_eq!(out.reason, StopReason::Converged);
        assert!(out.elapsed_minutes < 10_000.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            TuningRun::new(
                space(),
                TuningOptions {
                    budget_minutes: 100.0,
                    rng_seed: 99,
                    ..TuningOptions::default()
                },
            )
            .run(&mut objective, &mut TimeLimitOnly)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.best_value(), b.best_value());
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.convergence(), b.convergence());
        assert_eq!(a.technique_stats, b.technique_stats);
    }

    #[test]
    fn no_repeat_evaluations() {
        let run = TuningRun::new(
            space(),
            TuningOptions {
                budget_minutes: 400.0,
                ..TuningOptions::default()
            },
        );
        let out = run.run(&mut objective, &mut TimeLimitOnly);
        let mut seen = std::collections::HashSet::new();
        for e in out.history.evaluations() {
            assert!(seen.insert(e.config.clone()), "duplicate {:?}", e.config);
        }
    }

    #[test]
    fn tiny_space_exhausts_and_converges() {
        let s = SearchSpace::new(vec![ParamDef::new("x", ParamKind::Enum { n: 3 })]);
        let run = TuningRun::new(
            s,
            TuningOptions {
                budget_minutes: 1_000_000.0,
                max_evaluations: 1000,
                ..TuningOptions::default()
            },
        );
        let out = run.run(
            &mut |c: &Config| Measurement::new(c[0] as f64 + 1.0, 1.0),
            &mut TimeLimitOnly,
        );
        assert!(
            out.evaluations <= 5,
            "exhausted after ~3: {}",
            out.evaluations
        );
        assert_eq!(out.best_value(), 1.0);
        // the run must report *why* it ended: the whole space was
        // evaluated dry, well before the time/iteration limits.
        assert_eq!(out.reason, StopReason::SpaceExhausted);
        assert!(out.exhaustion_events > 0);
    }

    // --- trace integrity ------------------------------------------------

    /// Per-eval minutes that differ within a batch: evaluation `i` of a
    /// batch takes `3 + (i % 5)` minutes, so a prefix-max stamping would
    /// hand out several distinct minutes inside one iteration.
    fn jagged_objective() -> impl FnMut(&Config) -> Measurement {
        let mut i = 0usize;
        move |c: &Config| {
            i += 1;
            let v = (c[0] as f64 - 20.0).powi(2) + (c[1] as f64 - 3.0).powi(2) + 1.0;
            Measurement::new(v, 3.0 + (i % 5) as f64)
        }
    }

    #[test]
    fn all_events_of_a_batch_share_the_batch_completion_minute() {
        let run = TuningRun::new(
            space(),
            TuningOptions {
                budget_minutes: 150.0,
                parallel_evals: 8,
                seeds: vec![vec![20, 3], vec![0, 0], vec![5, 5]],
                ..TuningOptions::default()
            },
        );
        let out = run.run(&mut jagged_objective(), &mut TimeLimitOnly);
        assert!(out.evaluations > 16, "need several batches");
        let mut by_iter: std::collections::BTreeMap<u64, Vec<f64>> = Default::default();
        for e in &out.trace {
            by_iter.entry(e.iteration).or_default().push(e.minute);
        }
        for (iter, minutes) in &by_iter {
            assert!(
                minutes.iter().all(|&m| m == minutes[0]),
                "iteration {iter} has spread minutes {minutes:?}"
            );
        }
    }

    #[test]
    fn trace_minutes_are_monotone_non_decreasing() {
        let run = TuningRun::new(
            space(),
            TuningOptions {
                budget_minutes: 150.0,
                parallel_evals: 4,
                seeds: vec![vec![20, 3], vec![0, 0]],
                ..TuningOptions::default()
            },
        );
        let out = run.run(&mut jagged_objective(), &mut TimeLimitOnly);
        for w in out.trace.windows(2) {
            assert!(
                w[1].minute >= w[0].minute,
                "minutes went backwards: {} after {}",
                w[1].minute,
                w[0].minute
            );
        }
    }

    #[test]
    fn killed_evals_are_recorded_but_clamped() {
        // 7-minute evaluations against a 10-minute budget: the second
        // batch is in flight at the deadline (raw completion minute 14).
        let run = TuningRun::new(
            space(),
            TuningOptions {
                budget_minutes: 10.0,
                parallel_evals: 1,
                ..TuningOptions::default()
            },
        );
        let out = run.run(
            &mut |c: &Config| Measurement::new(objective(c).value, 7.0),
            &mut TimeLimitOnly,
        );
        assert_eq!(out.evaluations, 2);
        assert_eq!(out.killed_evals, 1, "second batch overran the deadline");
        // harvested: the measurement is in the history and may be best
        assert_eq!(out.history.len(), 2);
        // but the clock and the event minute never read past the budget
        assert_eq!(out.elapsed_minutes, 10.0);
        assert_eq!(out.trace[1].minute, 10.0);
        // a batch finishing exactly at the budget is not killed
        let exact = TuningRun::new(
            space(),
            TuningOptions {
                budget_minutes: 10.0,
                parallel_evals: 1,
                ..TuningOptions::default()
            },
        )
        .run(
            &mut |c: &Config| Measurement::new(objective(c).value, 5.0),
            &mut TimeLimitOnly,
        );
        assert_eq!(exact.killed_evals, 0);
        assert_eq!(exact.evaluations, 2);
    }

    #[test]
    fn sink_sees_evals_pulls_rewards_and_stop() {
        let ring = Arc::new(RingSink::new(4096));
        let run = TuningRun::new(
            space(),
            TuningOptions {
                budget_minutes: 60.0,
                seeds: vec![vec![20, 3]],
                ..TuningOptions::default()
            },
        )
        .with_sink(ring.clone());
        let out = run.run(&mut objective, &mut TimeLimitOnly);
        let evs = ring.events();
        let evals = evs.iter().filter(|e| e.kind() == "eval").count() as u64;
        assert_eq!(evals, out.evaluations);
        let pulls = evs.iter().filter(|e| e.kind() == "technique_pull").count() as u64;
        let rewards = evs
            .iter()
            .filter(|e| e.kind() == "technique_reward")
            .count() as u64;
        // one pull per proposal slot, one reward per measured proposal;
        // seeds are neither pulled nor rewarded
        assert!(pulls >= rewards);
        assert_eq!(rewards, out.evaluations - 1);
        assert!(matches!(evs.last(), Some(Event::RunStop { .. })));
    }

    #[test]
    fn technique_stats_account_for_every_evaluation() {
        let run = TuningRun::new(
            space(),
            TuningOptions {
                budget_minutes: 100.0,
                seeds: vec![vec![20, 3], vec![0, 0]],
                ..TuningOptions::default()
            },
        );
        let out = run.run(&mut objective, &mut TimeLimitOnly);
        let total: u64 = out.technique_stats.iter().map(|t| t.evals).sum();
        assert_eq!(total, out.evaluations);
        let seed_row = out
            .technique_stats
            .iter()
            .find(|t| t.technique == "seed")
            .expect("seed row present");
        assert_eq!(seed_row.evals, 2);
        assert_eq!(seed_row.best_value, 1.0);
        // rows are sorted by name
        for w in out.technique_stats.windows(2) {
            assert!(w[0].technique < w[1].technique);
        }
    }
}
