//! The tuning driver with a virtual clock.
//!
//! Reproduces OpenTuner's run loop under the paper's timing regime: each
//! evaluation is an HLS run costing minutes of wall-clock, so the driver
//! charges every measurement's [`Measurement::minutes`] to a virtual clock.
//! With `parallel_evals = k` the driver proposes `k` candidates per
//! iteration and advances the clock by the *slowest* of the batch —
//! footnote 3's "the OpenTuner ... uses the eight cores to evaluate top-8
//! candidates at one iteration".

use crate::bandit::AucBandit;
use crate::history::{History, Measurement};
use crate::objective::Objective;
use crate::param::{Config, SearchSpace};
use crate::stopping::{StopReason, StoppingCriterion};
use crate::technique::{default_portfolio, SearchTechnique};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Options controlling one tuning run.
#[derive(Debug, Clone)]
pub struct TuningOptions {
    /// Virtual wall-clock budget in minutes (the paper caps vanilla
    /// OpenTuner at 4 hours).
    pub budget_minutes: f64,
    /// Candidates evaluated concurrently per iteration.
    pub parallel_evals: usize,
    /// Configurations evaluated before any technique proposes (the DSE's
    /// generated seeds; vanilla uses one random seed).
    pub seeds: Vec<Config>,
    /// RNG seed — runs are fully deterministic given this.
    pub rng_seed: u64,
    /// Hard cap on evaluations (a safety net, not a paper knob).
    pub max_evaluations: u64,
}

impl Default for TuningOptions {
    fn default() -> Self {
        TuningOptions {
            budget_minutes: 240.0,
            parallel_evals: 1,
            seeds: Vec::new(),
            rng_seed: 0xC0FFEE,
            max_evaluations: 100_000,
        }
    }
}

/// One point on the convergence trace (the Fig. 3 series).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual minutes elapsed when the evaluation finished.
    pub minute: f64,
    /// Iteration (batch) index.
    pub iteration: u64,
    /// Technique that proposed the point (`"seed"` for seeds).
    pub technique: String,
    /// Objective value of the point.
    pub value: f64,
    /// Incumbent best after this point.
    pub best_value: f64,
    /// Whether this point improved the incumbent.
    pub improved: bool,
}

/// Result of a tuning run.
#[derive(Debug, Clone)]
pub struct TuningOutcome {
    /// Best configuration and objective found (if any point was feasible).
    pub best: Option<(Config, f64)>,
    /// Full convergence trace.
    pub trace: Vec<TraceEvent>,
    /// Virtual minutes consumed.
    pub elapsed_minutes: f64,
    /// Total evaluations performed.
    pub evaluations: u64,
    /// Batch slots abandoned because proposal could not find an unseen
    /// configuration (16 mutation retries plus one fresh redraw all landed
    /// on evaluated points). A non-zero count means the search was grinding
    /// against an exhausted (sub-)space; the run stops with
    /// [`StopReason::SpaceExhausted`] once a whole batch is lost this way.
    pub exhaustion_events: u64,
    /// Why the run ended.
    pub reason: StopReason,
    /// The final history (for post-hoc analysis).
    pub history: History,
}

impl TuningOutcome {
    /// Best objective value, `+inf` if nothing was feasible.
    pub fn best_value(&self) -> f64 {
        self.best.as_ref().map(|(_, v)| *v).unwrap_or(f64::INFINITY)
    }

    /// The trace downsampled to `(minute, best_value)` steps.
    pub fn convergence(&self) -> Vec<(f64, f64)> {
        self.trace
            .iter()
            .map(|e| (e.minute, e.best_value))
            .collect()
    }
}

/// A configured tuning run over one search (sub-)space.
pub struct TuningRun {
    space: SearchSpace,
    options: TuningOptions,
    techniques: Vec<Box<dyn SearchTechnique + Send>>,
}

impl TuningRun {
    /// Creates a run with the paper's default technique portfolio.
    pub fn new(space: SearchSpace, options: TuningOptions) -> Self {
        TuningRun {
            space,
            options,
            techniques: default_portfolio(),
        }
    }

    /// Replaces the technique portfolio.
    pub fn with_techniques(mut self, techniques: Vec<Box<dyn SearchTechnique + Send>>) -> Self {
        assert!(!techniques.is_empty(), "at least one technique required");
        self.techniques = techniques;
        self
    }

    /// Runs to completion.
    ///
    /// `objective` evaluates configurations ("runs HLS"); batches are
    /// handed to [`Objective::measure_batch`], so a parallel objective
    /// (e.g. [`ThreadedObjective`](crate::ThreadedObjective)) measures a
    /// whole iteration concurrently. `stop` is the early-stopping
    /// criterion consulted once per iteration. The run's decisions depend
    /// only on the *order* of batch results, which every `Objective` must
    /// preserve — outcomes are byte-identical across serial and threaded
    /// objectives.
    pub fn run(
        mut self,
        objective: &mut dyn Objective,
        stop: &mut dyn StoppingCriterion,
    ) -> TuningOutcome {
        let mut rng = SmallRng::seed_from_u64(self.options.rng_seed);
        let mut bandit = AucBandit::new(self.techniques.len());
        let mut history = History::new();
        let mut trace = Vec::new();
        let mut clock = 0.0f64;
        let mut evals = 0u64;
        let mut iteration = 0u64;
        let mut exhaustion_events = 0u64;
        let mut reason = StopReason::TimeLimit;

        // Seed evaluations: one batch, clock advances by the slowest.
        if !self.options.seeds.is_empty() {
            let mut batch_minutes = 0.0f64;
            let mut seeds = std::mem::take(&mut self.options.seeds);
            for seed in seeds.iter_mut() {
                self.space.clamp(seed);
            }
            let measurements = objective.measure_batch(&seeds);
            for (seed, m) in seeds.into_iter().zip(measurements) {
                batch_minutes = batch_minutes.max(m.minutes);
                evals += 1;
                let improved = history.record(seed, m, vec![]);
                clock_trace(
                    &mut trace,
                    clock + batch_minutes,
                    iteration,
                    "seed",
                    m,
                    &history,
                    improved,
                );
            }
            clock += batch_minutes;
            iteration += 1;
        }

        'outer: while clock < self.options.budget_minutes && evals < self.options.max_evaluations {
            if stop.should_stop(&history) {
                reason = StopReason::Converged;
                break;
            }
            // Phase 1: propose the whole batch from the *same* history
            // snapshot — parallel workers cannot see each other's pending
            // results (footnote 3: evaluating top-k per iteration "is not
            // scalable in terms of the efficiency").
            let mut batch: Vec<(usize, Config, Vec<usize>)> = Vec::new();
            let mut batch_seen: Vec<Config> = Vec::new();
            for _ in 0..self.options.parallel_evals.max(1) {
                if evals + batch.len() as u64 >= self.options.max_evaluations {
                    break;
                }
                let arm = bandit.select();
                let mut cfg = self.techniques[arm].propose(&self.space, &history, &mut rng);
                // Dedupe against history and the in-flight batch: don't
                // waste an HLS run on a repeat.
                let mut tries = 0;
                while (history.seen(&cfg) || batch_seen.contains(&cfg)) && tries < 16 {
                    self.space.mutate_one(&mut cfg, &mut rng);
                    tries += 1;
                }
                if history.seen(&cfg) || batch_seen.contains(&cfg) {
                    // Space (or partition) is effectively exhausted around
                    // the incumbent — draw fresh.
                    cfg = self.space.random(&mut rng);
                    if history.seen(&cfg) || batch_seen.contains(&cfg) {
                        // The slot is abandoned, not silently: count it so
                        // callers can see how hard the search ground
                        // against an exhausted space.
                        exhaustion_events += 1;
                        continue;
                    }
                }
                let mutated = mutated_params(&history, &cfg);
                batch_seen.push(cfg.clone());
                batch.push((arm, cfg, mutated));
            }
            if batch.is_empty() {
                reason = if evals >= self.options.max_evaluations {
                    StopReason::IterationLimit
                } else {
                    StopReason::SpaceExhausted
                };
                break 'outer;
            }
            // Phase 2: measure the whole batch (possibly on real threads),
            // and only then feed results back, in proposal order.
            let configs: Vec<Config> = batch.iter().map(|(_, c, _)| c.clone()).collect();
            let measurements = objective.measure_batch(&configs);
            let mut batch_minutes = 0.0f64;
            for ((arm, cfg, mutated), m) in batch.into_iter().zip(measurements) {
                batch_minutes = batch_minutes.max(m.minutes);
                evals += 1;
                self.techniques[arm].feedback(&cfg, &m);
                let improved = history.record(cfg, m, mutated);
                bandit.reward(arm, improved);
                clock_trace(
                    &mut trace,
                    clock + batch_minutes,
                    iteration,
                    self.techniques[arm].name(),
                    m,
                    &history,
                    improved,
                );
            }
            clock += batch_minutes;
            iteration += 1;
        }

        // Evaluations in flight at the deadline are killed: the clock never
        // reads past the budget (OpenTuner's timeout semantics).
        if clock > self.options.budget_minutes {
            clock = self.options.budget_minutes;
            for e in trace.iter_mut() {
                if e.minute > clock {
                    e.minute = clock;
                }
            }
        }

        TuningOutcome {
            best: history.best().map(|(c, v)| (c.clone(), v)),
            trace,
            elapsed_minutes: clock,
            evaluations: evals,
            exhaustion_events,
            reason,
            history,
        }
    }
}

/// Factors on which `cfg` differs from the incumbent best (attribution for
/// the entropy stopping criterion).
fn mutated_params(history: &History, cfg: &Config) -> Vec<usize> {
    match history.best() {
        Some((best, _)) => cfg
            .iter()
            .zip(best)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect(),
        None => Vec::new(),
    }
}

#[allow(clippy::too_many_arguments)]
fn clock_trace(
    trace: &mut Vec<TraceEvent>,
    minute: f64,
    iteration: u64,
    technique: &str,
    m: Measurement,
    history: &History,
    improved: bool,
) {
    trace.push(TraceEvent {
        minute,
        iteration,
        technique: technique.to_string(),
        value: m.value,
        best_value: history.best().map(|(_, v)| v).unwrap_or(f64::INFINITY),
        improved,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{ParamDef, ParamKind};
    use crate::stopping::{NoImprovement, TimeLimitOnly};

    fn space() -> SearchSpace {
        SearchSpace::new(vec![
            ParamDef::new("a", ParamKind::IntRange { lo: 0, hi: 31 }),
            ParamDef::new("b", ParamKind::IntRange { lo: 0, hi: 31 }),
        ])
    }

    fn objective(c: &Config) -> Measurement {
        let v = (c[0] as f64 - 20.0).powi(2) + (c[1] as f64 - 3.0).powi(2) + 1.0;
        Measurement::new(v, 5.0)
    }

    #[test]
    fn finds_good_points_and_respects_budget() {
        let run = TuningRun::new(
            space(),
            TuningOptions {
                budget_minutes: 200.0,
                parallel_evals: 1,
                ..TuningOptions::default()
            },
        );
        let out = run.run(&mut objective, &mut TimeLimitOnly);
        assert!(out.best_value() < 20.0, "best = {}", out.best_value());
        assert!(out.elapsed_minutes >= 200.0);
        assert_eq!(out.reason, StopReason::TimeLimit);
        // 5 minutes per eval, sequential → ~40 evaluations
        assert!(out.evaluations >= 38 && out.evaluations <= 42);
    }

    #[test]
    fn parallel_evals_amortize_the_clock() {
        let seq = TuningRun::new(
            space(),
            TuningOptions {
                budget_minutes: 100.0,
                parallel_evals: 1,
                ..TuningOptions::default()
            },
        )
        .run(&mut objective, &mut TimeLimitOnly);
        let par = TuningRun::new(
            space(),
            TuningOptions {
                budget_minutes: 100.0,
                parallel_evals: 8,
                ..TuningOptions::default()
            },
        )
        .run(&mut objective, &mut TimeLimitOnly);
        assert!(
            par.evaluations >= seq.evaluations * 6,
            "8-wide should evaluate ~8x the points: {} vs {}",
            par.evaluations,
            seq.evaluations
        );
    }

    #[test]
    fn seeds_are_evaluated_first() {
        let run = TuningRun::new(
            space(),
            TuningOptions {
                budget_minutes: 30.0,
                seeds: vec![vec![20, 3], vec![0, 0]],
                ..TuningOptions::default()
            },
        );
        let out = run.run(&mut objective, &mut TimeLimitOnly);
        assert_eq!(out.trace[0].technique, "seed");
        assert_eq!(out.trace[1].technique, "seed");
        // the good seed is optimal; nothing beats value 1.0
        assert!((out.best_value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn early_stopping_fires() {
        let run = TuningRun::new(
            space(),
            TuningOptions {
                budget_minutes: 10_000.0,
                seeds: vec![vec![20, 3]],
                ..TuningOptions::default()
            },
        );
        let out = run.run(&mut objective, &mut NoImprovement::new(5));
        assert_eq!(out.reason, StopReason::Converged);
        assert!(out.elapsed_minutes < 10_000.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            TuningRun::new(
                space(),
                TuningOptions {
                    budget_minutes: 100.0,
                    rng_seed: 99,
                    ..TuningOptions::default()
                },
            )
            .run(&mut objective, &mut TimeLimitOnly)
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.best_value(), b.best_value());
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.convergence(), b.convergence());
    }

    #[test]
    fn no_repeat_evaluations() {
        let run = TuningRun::new(
            space(),
            TuningOptions {
                budget_minutes: 400.0,
                ..TuningOptions::default()
            },
        );
        let out = run.run(&mut objective, &mut TimeLimitOnly);
        let mut seen = std::collections::HashSet::new();
        for e in out.history.evaluations() {
            assert!(seen.insert(e.config.clone()), "duplicate {:?}", e.config);
        }
    }

    #[test]
    fn tiny_space_exhausts_and_converges() {
        let s = SearchSpace::new(vec![ParamDef::new("x", ParamKind::Enum { n: 3 })]);
        let run = TuningRun::new(
            s,
            TuningOptions {
                budget_minutes: 1_000_000.0,
                max_evaluations: 1000,
                ..TuningOptions::default()
            },
        );
        let out = run.run(
            &mut |c: &Config| Measurement::new(c[0] as f64 + 1.0, 1.0),
            &mut TimeLimitOnly,
        );
        assert!(
            out.evaluations <= 5,
            "exhausted after ~3: {}",
            out.evaluations
        );
        assert_eq!(out.best_value(), 1.0);
    }
}
