//! Stopping criteria.
//!
//! Vanilla OpenTuner "does not have a systematic stopping criteria but only
//! adopts the limitation of either execution time or searched point count"
//! (§4.3.3). This module defines the criterion interface plus the two
//! baselines the paper compares against; S2FA's Shannon-entropy criterion
//! is implemented in `s2fa-dse`.

use crate::history::History;

/// Why a tuning run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The virtual time budget ran out.
    TimeLimit,
    /// The stopping criterion fired before the time limit.
    Converged,
    /// The iteration cap was reached.
    IterationLimit,
    /// Proposal could not find any unseen configuration: the (sub-)space
    /// has been evaluated dry (see `TuningOutcome::exhaustion_events`).
    SpaceExhausted,
}

/// A pluggable early-stopping criterion, consulted once per iteration.
pub trait StoppingCriterion {
    /// Name for traces.
    fn name(&self) -> &'static str;

    /// Returns `true` to terminate the run now.
    fn should_stop(&mut self, history: &History) -> bool;
}

/// The vanilla behaviour: never stop early (time/iteration limits only).
#[derive(Debug, Clone, Copy, Default)]
pub struct TimeLimitOnly;

impl StoppingCriterion for TimeLimitOnly {
    fn name(&self) -> &'static str {
        "time-limit-only"
    }

    fn should_stop(&mut self, _history: &History) -> bool {
        false
    }
}

/// The "trivial criteria" of §5.2: stop after `k` consecutive iterations
/// without a new best result.
#[derive(Debug, Clone, Copy)]
pub struct NoImprovement {
    k: usize,
    streak: usize,
    last_len: usize,
}

impl NoImprovement {
    /// Stops after `k` consecutive non-improving evaluations (the paper
    /// evaluates `k = 10`).
    pub fn new(k: usize) -> Self {
        NoImprovement {
            k,
            streak: 0,
            last_len: 0,
        }
    }
}

impl StoppingCriterion for NoImprovement {
    fn name(&self) -> &'static str {
        "no-improvement"
    }

    fn should_stop(&mut self, history: &History) -> bool {
        let evals = history.evaluations();
        for e in &evals[self.last_len..] {
            if e.improved {
                self.streak = 0;
            } else {
                self.streak += 1;
            }
        }
        self.last_len = evals.len();
        // Require at least one feasible result before declaring
        // convergence, otherwise nothing was ever learned.
        history.best().is_some() && self.streak >= self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::Measurement;

    #[test]
    fn time_limit_only_never_stops() {
        let mut c = TimeLimitOnly;
        let h = History::new();
        assert!(!c.should_stop(&h));
    }

    #[test]
    fn no_improvement_counts_streaks() {
        let mut c = NoImprovement::new(3);
        let mut h = History::new();
        h.record(vec![0], Measurement::new(10.0, 1.0), vec![]);
        assert!(!c.should_stop(&h));
        h.record(vec![1], Measurement::new(20.0, 1.0), vec![]);
        h.record(vec![2], Measurement::new(21.0, 1.0), vec![]);
        assert!(!c.should_stop(&h)); // streak = 2
        h.record(vec![3], Measurement::new(22.0, 1.0), vec![]);
        assert!(c.should_stop(&h)); // streak = 3
    }

    #[test]
    fn improvement_resets_streak() {
        let mut c = NoImprovement::new(2);
        let mut h = History::new();
        h.record(vec![0], Measurement::new(10.0, 1.0), vec![]);
        h.record(vec![1], Measurement::new(11.0, 1.0), vec![]);
        h.record(vec![2], Measurement::new(5.0, 1.0), vec![]); // improves
        assert!(!c.should_stop(&h));
        h.record(vec![3], Measurement::new(9.0, 1.0), vec![]);
        h.record(vec![4], Measurement::new(9.5, 1.0), vec![]);
        assert!(c.should_stop(&h));
    }

    #[test]
    fn needs_a_feasible_best() {
        let mut c = NoImprovement::new(2);
        let mut h = History::new();
        h.record(vec![0], Measurement::infeasible(1.0), vec![]);
        h.record(vec![1], Measurement::infeasible(1.0), vec![]);
        h.record(vec![2], Measurement::infeasible(1.0), vec![]);
        assert!(!c.should_stop(&h));
    }
}
