//! Evaluation history shared by techniques, the bandit, and stopping
//! criteria.

use crate::param::Config;
use std::collections::HashSet;

/// Result of evaluating one design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Objective value (lower is better; `+inf` = infeasible design).
    pub value: f64,
    /// Evaluation cost in virtual minutes (the HLS run time).
    pub minutes: f64,
}

impl Measurement {
    /// A feasible measurement.
    pub fn new(value: f64, minutes: f64) -> Self {
        Measurement { value, minutes }
    }

    /// An infeasible design (objective `+inf`).
    pub fn infeasible(minutes: f64) -> Self {
        Measurement {
            value: f64::INFINITY,
            minutes,
        }
    }

    /// True if the design synthesized.
    pub fn is_feasible(&self) -> bool {
        self.value.is_finite()
    }
}

/// One evaluated point.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// The configuration evaluated.
    pub config: Config,
    /// Its measurement.
    pub measurement: Measurement,
    /// Parameters that differed from the incumbent best when proposed
    /// (used by the entropy stopping criterion to attribute uphill moves).
    pub mutated_params: Vec<usize>,
    /// Whether this evaluation improved on the incumbent best.
    pub improved: bool,
}

/// Append-only history of a tuning run.
#[derive(Debug, Clone, Default)]
pub struct History {
    evals: Vec<Evaluation>,
    seen: HashSet<Config>,
    best: Option<(Config, f64)>,
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an evaluation; returns `true` if it is a new best.
    pub fn record(
        &mut self,
        config: Config,
        measurement: Measurement,
        mutated_params: Vec<usize>,
    ) -> bool {
        let improved = match &self.best {
            None => measurement.is_feasible(),
            Some((_, b)) => measurement.value < *b,
        };
        if improved {
            self.best = Some((config.clone(), measurement.value));
        }
        self.seen.insert(config.clone());
        self.evals.push(Evaluation {
            config,
            measurement,
            mutated_params,
            improved,
        });
        improved
    }

    /// True if the configuration was already evaluated.
    pub fn seen(&self, config: &Config) -> bool {
        self.seen.contains(config)
    }

    /// The incumbent best `(config, value)`.
    pub fn best(&self) -> Option<(&Config, f64)> {
        self.best.as_ref().map(|(c, v)| (c, *v))
    }

    /// All evaluations, in order.
    pub fn evaluations(&self) -> &[Evaluation] {
        &self.evals
    }

    /// Number of evaluations.
    pub fn len(&self) -> usize {
        self.evals.len()
    }

    /// True if nothing was evaluated yet.
    pub fn is_empty(&self) -> bool {
        self.evals.is_empty()
    }

    /// The feasible evaluations only.
    pub fn feasible(&self) -> impl Iterator<Item = &Evaluation> {
        self.evals.iter().filter(|e| e.measurement.is_feasible())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_tracking() {
        let mut h = History::new();
        assert!(h.record(vec![0], Measurement::new(10.0, 1.0), vec![]));
        assert!(!h.record(vec![1], Measurement::new(20.0, 1.0), vec![0]));
        assert!(h.record(vec![2], Measurement::new(5.0, 1.0), vec![0]));
        assert_eq!(h.best().unwrap().1, 5.0);
        assert_eq!(h.len(), 3);
        assert!(h.seen(&vec![1]));
        assert!(!h.seen(&vec![9]));
    }

    #[test]
    fn infeasible_never_becomes_best() {
        let mut h = History::new();
        assert!(!h.record(vec![0], Measurement::infeasible(3.0), vec![]));
        assert!(h.best().is_none());
        assert!(h.record(vec![1], Measurement::new(8.0, 1.0), vec![]));
        assert!(!h.record(vec![2], Measurement::infeasible(3.0), vec![]));
        assert_eq!(h.best().unwrap().1, 8.0);
        assert_eq!(h.feasible().count(), 1);
    }
}
