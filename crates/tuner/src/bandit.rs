//! The multi-armed bandit that arbitrates search techniques.
//!
//! OpenTuner's technique selection uses a sliding-window *area-under-curve*
//! credit assignment with a UCB-style exploration bonus (Fialho et al.,
//! the paper's reference \[13\]): "The algorithm that can efficiently find high-quality
//! design points will be rewarded and allocated more design points, and
//! vice versa" (§4.2).

use std::collections::VecDeque;

/// Sliding-window AUC bandit over `n` arms.
#[derive(Debug, Clone)]
pub struct AucBandit {
    window: usize,
    exploration: f64,
    /// Per-arm recent outcomes (true = produced a new best), most recent
    /// last.
    outcomes: Vec<VecDeque<bool>>,
    /// Per-arm total pulls.
    pulls: Vec<u64>,
    total_pulls: u64,
}

impl AucBandit {
    /// Creates a bandit over `arms` techniques with OpenTuner's default
    /// window (50) and exploration constant (√2-ish).
    pub fn new(arms: usize) -> Self {
        AucBandit {
            window: 50,
            exploration: 1.4,
            outcomes: vec![VecDeque::new(); arms],
            pulls: vec![0; arms],
            total_pulls: 0,
        }
    }

    /// Overrides the sliding-window length.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Number of arms.
    pub fn arms(&self) -> usize {
        self.outcomes.len()
    }

    /// Area-under-curve score of one arm: recent successes weighted by
    /// recency (a success `i` slots from the window start earns `i + 1`).
    fn auc(&self, arm: usize) -> f64 {
        let o = &self.outcomes[arm];
        if o.is_empty() {
            return 0.0;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &hit) in o.iter().enumerate() {
            let w = (i + 1) as f64;
            den += w;
            if hit {
                num += w;
            }
        }
        num / den
    }

    /// Selects the next arm to pull (deterministic given the state):
    /// AUC exploitation plus a UCB exploration bonus; unpulled arms first.
    pub fn select(&self) -> usize {
        // Any arm never pulled goes first, in index order.
        if let Some(i) = self.pulls.iter().position(|&p| p == 0) {
            return i;
        }
        let t = self.total_pulls.max(1) as f64;
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for arm in 0..self.arms() {
            let bonus = self.exploration * ((2.0 * t.ln()) / self.pulls[arm] as f64).sqrt();
            let score = self.auc(arm) + bonus;
            if score > best_score {
                best_score = score;
                best = arm;
            }
        }
        best
    }

    /// Records the outcome of a pull of `arm`.
    pub fn reward(&mut self, arm: usize, new_best: bool) {
        self.pulls[arm] += 1;
        self.total_pulls += 1;
        let o = &mut self.outcomes[arm];
        o.push_back(new_best);
        while o.len() > self.window {
            o.pop_front();
        }
    }

    /// Fraction of recent pulls of `arm` that produced a new best.
    pub fn hit_rate(&self, arm: usize) -> f64 {
        let o = &self.outcomes[arm];
        if o.is_empty() {
            return 0.0;
        }
        o.iter().filter(|&&h| h).count() as f64 / o.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpulled_arms_are_tried_first() {
        let mut b = AucBandit::new(3);
        assert_eq!(b.select(), 0);
        b.reward(0, false);
        assert_eq!(b.select(), 1);
        b.reward(1, false);
        assert_eq!(b.select(), 2);
    }

    #[test]
    fn productive_arm_gets_more_pulls() {
        let mut b = AucBandit::new(2);
        // Arm 0 succeeds 40% of the time, arm 1 never.
        let mut pulls = [0u32; 2];
        for i in 0..200 {
            let arm = b.select();
            pulls[arm] += 1;
            let hit = arm == 0 && i % 5 < 2;
            b.reward(arm, hit);
        }
        assert!(
            pulls[0] > pulls[1] * 2,
            "productive arm should dominate: {pulls:?}"
        );
    }

    #[test]
    fn auc_weights_recency() {
        let mut b = AucBandit::new(1).with_window(4);
        // old successes, recent failures
        b.reward(0, true);
        b.reward(0, true);
        b.reward(0, false);
        b.reward(0, false);
        let early = b.auc(0);
        // now recent successes
        b.reward(0, true);
        b.reward(0, true);
        let late = b.auc(0);
        assert!(late > early);
    }

    #[test]
    fn window_bounds_memory() {
        let mut b = AucBandit::new(1).with_window(3);
        for _ in 0..10 {
            b.reward(0, true);
        }
        assert_eq!(b.outcomes[0].len(), 3);
        assert!((b.hit_rate(0) - 1.0).abs() < 1e-12);
    }
}
