#![warn(missing_docs)]

//! # s2fa-tuner — the OpenTuner substitute
//!
//! S2FA builds its DSE "on the top of OpenTuner, an open-source framework
//! for building domain-specific program tuners. The OpenTuner runtime
//! allows multiple reinforcement learning algorithms to work simultaneously
//! ... and adopts a multi-armed bandit algorithm to judge the effectiveness
//! of each search technique and allocate design points according to the
//! judgment" (§4.2).
//!
//! This crate reimplements that machinery:
//!
//! * [`SearchSpace`] / [`Config`] — an index-encoded parameter space with
//!   per-parameter bounds (sub-spaces implement the DSE's partitions);
//! * the paper's four techniques — [`GreedyMutation`],
//!   [`DifferentialEvolution`], [`ParticleSwarm`], [`SimulatedAnnealing`];
//! * [`AucBandit`] — the sliding-window area-under-curve multi-armed
//!   bandit that arbitrates among techniques;
//! * [`TuningRun`] — the driver with a *virtual clock*: every evaluation
//!   charges its HLS minutes, and with `parallel_evals = k` the run batches
//!   `k` candidates per iteration, advancing the clock by the slowest
//!   (the footnote-3 behaviour of vanilla OpenTuner on 8 cores);
//! * pluggable [`StoppingCriterion`]s (time limit, no-improvement window;
//!   the Shannon-entropy criterion lives in `s2fa-dse`).
//!
//! Everything is deterministic given `TuningOptions::rng_seed`.

pub mod bandit;
pub mod history;
pub mod objective;
pub mod param;
pub mod runtime;
pub mod stopping;
pub mod technique;

pub use bandit::AucBandit;
pub use history::{History, Measurement};
pub use objective::{Objective, ThreadedObjective};
pub use param::{Config, ParamDef, ParamKind, SearchSpace};
pub use runtime::{TraceEvent, TuningOptions, TuningOutcome, TuningRun};
pub use stopping::{NoImprovement, StopReason, StoppingCriterion, TimeLimitOnly};
pub use technique::{
    DifferentialEvolution, GreedyMutation, ParticleSwarm, RandomSearch, SearchTechnique,
    SimulatedAnnealing,
};
