//! The four reinforcement-learning search techniques of §4.2.
//!
//! "We use a set of reinforcement learning algorithms, including uniform
//! greedy mutation, differential evolution genetic algorithm, particle
//! swarm optimization, and simulated annealing, to perform DSE in the
//! S2FA."
//!
//! All techniques work in index space over a (possibly restricted)
//! [`SearchSpace`] and are deterministic given the run's RNG.

use crate::history::{History, Measurement};
use crate::param::{Config, SearchSpace};
use rand::rngs::SmallRng;
use rand::Rng;

/// A search technique: proposes configurations, learns from feedback.
pub trait SearchTechnique {
    /// Technique name for bandit bookkeeping and traces.
    fn name(&self) -> &'static str;

    /// Proposes the next configuration to evaluate.
    fn propose(&mut self, space: &SearchSpace, history: &History, rng: &mut SmallRng) -> Config;

    /// Observes the measurement of a configuration this technique proposed.
    fn feedback(&mut self, config: &Config, measurement: &Measurement);
}

/// Builds the paper's default technique portfolio.
pub fn default_portfolio() -> Vec<Box<dyn SearchTechnique + Send>> {
    vec![
        Box::new(GreedyMutation::new()),
        Box::new(DifferentialEvolution::new()),
        Box::new(ParticleSwarm::new()),
        Box::new(SimulatedAnnealing::new()),
    ]
}

// --------------------------------------------------------------------------
// Uniform greedy mutation
// --------------------------------------------------------------------------

/// OpenTuner's *uniform greedy mutation*: every factor of the incumbent
/// best is re-drawn with probability `rate` (at least one factor always
/// moves), so most proposals are single-factor hill-climb steps while a
/// tail of multi-factor moves can cross factor-interaction ridges.
#[derive(Debug)]
pub struct GreedyMutation {
    rate: f64,
}

impl Default for GreedyMutation {
    fn default() -> Self {
        GreedyMutation { rate: 0.1 }
    }
}

impl GreedyMutation {
    /// Creates the technique with the default 10% per-factor mutation
    /// rate.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SearchTechnique for GreedyMutation {
    fn name(&self) -> &'static str {
        "greedy-mutation"
    }

    fn propose(&mut self, space: &SearchSpace, history: &History, rng: &mut SmallRng) -> Config {
        match history.best() {
            Some((best, _)) => {
                let mut c = best.clone();
                space.clamp(&mut c);
                let mut moved = false;
                for (i, slot) in c.iter_mut().enumerate() {
                    let (lo, hi) = space.bounds(i);
                    if hi > lo && rng.gen_bool(self.rate) {
                        let mut v = rng.gen_range(lo..=hi);
                        while v == *slot {
                            v = rng.gen_range(lo..=hi);
                        }
                        *slot = v;
                        moved = true;
                    }
                }
                if !moved {
                    space.mutate_one(&mut c, rng);
                }
                c
            }
            None => space.random(rng),
        }
    }

    fn feedback(&mut self, _config: &Config, _measurement: &Measurement) {}
}

// --------------------------------------------------------------------------
// Differential evolution
// --------------------------------------------------------------------------

/// Classic `DE/rand/1/bin` over index space with a small population.
#[derive(Debug)]
pub struct DifferentialEvolution {
    population: Vec<(Config, f64)>,
    /// Differential weight.
    f: f64,
    /// Crossover probability.
    cr: f64,
    pop_size: usize,
}

impl Default for DifferentialEvolution {
    fn default() -> Self {
        DifferentialEvolution {
            population: Vec::new(),
            f: 0.8,
            cr: 0.6,
            pop_size: 12,
        }
    }
}

impl DifferentialEvolution {
    /// Creates the technique with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SearchTechnique for DifferentialEvolution {
    fn name(&self) -> &'static str {
        "differential-evolution"
    }

    fn propose(&mut self, space: &SearchSpace, history: &History, rng: &mut SmallRng) -> Config {
        if self.population.len() < self.pop_size {
            // Seed the population from history bests or random points.
            let c = match history.best() {
                Some((best, _)) if rng.gen_bool(0.3) => {
                    let mut c = best.clone();
                    space.clamp(&mut c);
                    space.mutate_one(&mut c, rng);
                    c
                }
                _ => space.random(rng),
            };
            return c;
        }
        let pick = |rng: &mut SmallRng| rng.gen_range(0..self.population.len());
        let (a, b, c) = (pick(rng), pick(rng), pick(rng));
        let base = &self.population[a].0;
        let x = &self.population[b].0;
        let y = &self.population[c].0;
        let mut child: Config = base
            .iter()
            .zip(x.iter().zip(y.iter()))
            .map(|(&bv, (&xv, &yv))| {
                let diff = self.f * (xv as f64 - yv as f64);
                (bv as f64 + diff).round().max(0.0) as u32
            })
            .collect();
        // Binomial crossover against the incumbent best.
        if let Some((best, _)) = history.best() {
            for i in 0..child.len() {
                if !rng.gen_bool(self.cr) {
                    child[i] = best[i];
                }
            }
        }
        space.clamp(&mut child);
        child
    }

    fn feedback(&mut self, config: &Config, measurement: &Measurement) {
        let value = measurement.value;
        if self.population.len() < self.pop_size {
            self.population.push((config.clone(), value));
            return;
        }
        // Replace the worst member if the child improves on it.
        if let Some((worst_idx, _)) = self
            .population
            .iter()
            .enumerate()
            .max_by(|(_, (_, a)), (_, (_, b))| a.total_cmp(b))
        {
            if value < self.population[worst_idx].1 {
                self.population[worst_idx] = (config.clone(), value);
            }
        }
    }
}

// --------------------------------------------------------------------------
// Particle swarm optimization
// --------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Particle {
    position: Vec<f64>,
    velocity: Vec<f64>,
    best_pos: Vec<f64>,
    best_val: f64,
}

/// PSO over the continuous relaxation of index space.
#[derive(Debug)]
pub struct ParticleSwarm {
    particles: Vec<Particle>,
    swarm: usize,
    inertia: f64,
    c_personal: f64,
    c_global: f64,
    next: usize,
    /// Particle index awaiting feedback.
    pending: Option<usize>,
}

impl Default for ParticleSwarm {
    fn default() -> Self {
        ParticleSwarm {
            particles: Vec::new(),
            swarm: 10,
            inertia: 0.7,
            c_personal: 1.5,
            c_global: 1.5,
            next: 0,
            pending: None,
        }
    }
}

impl ParticleSwarm {
    /// Creates the technique with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SearchTechnique for ParticleSwarm {
    fn name(&self) -> &'static str {
        "particle-swarm"
    }

    fn propose(&mut self, space: &SearchSpace, history: &History, rng: &mut SmallRng) -> Config {
        if self.particles.len() < self.swarm {
            let c = space.random(rng);
            let pos: Vec<f64> = c.iter().map(|&v| v as f64).collect();
            self.particles.push(Particle {
                position: pos.clone(),
                velocity: vec![0.0; c.len()],
                best_pos: pos,
                best_val: f64::INFINITY,
            });
            self.pending = Some(self.particles.len() - 1);
            return c;
        }
        let i = self.next % self.particles.len();
        self.next += 1;
        self.pending = Some(i);
        let global_best: Vec<f64> = history
            .best()
            .map(|(c, _)| c.iter().map(|&v| v as f64).collect())
            .unwrap_or_else(|| self.particles[i].best_pos.clone());
        let p = &mut self.particles[i];
        for ((pos, vel), (pb, gb)) in p
            .position
            .iter_mut()
            .zip(p.velocity.iter_mut())
            .zip(p.best_pos.iter().zip(&global_best))
        {
            let r1: f64 = rng.gen();
            let r2: f64 = rng.gen();
            *vel = self.inertia * *vel
                + self.c_personal * r1 * (pb - *pos)
                + self.c_global * r2 * (gb - *pos);
            *pos += *vel;
        }
        let mut c: Config = p
            .position
            .iter()
            .map(|&v| v.round().max(0.0) as u32)
            .collect();
        space.clamp(&mut c);
        // Keep the particle on the clamped lattice point.
        for (pd, &cv) in p.position.iter_mut().zip(&c) {
            *pd = cv as f64;
        }
        c
    }

    fn feedback(&mut self, config: &Config, measurement: &Measurement) {
        if let Some(i) = self.pending.take() {
            let p = &mut self.particles[i];
            if measurement.value < p.best_val {
                p.best_val = measurement.value;
                p.best_pos = config.iter().map(|&v| v as f64).collect();
            }
        }
    }
}

// --------------------------------------------------------------------------
// Simulated annealing
// --------------------------------------------------------------------------

/// Metropolis acceptance over single-factor neighbours with geometric
/// cooling.
#[derive(Debug)]
pub struct SimulatedAnnealing {
    current: Option<(Config, f64)>,
    temperature: f64,
    cooling: f64,
    proposed: Option<Config>,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            current: None,
            temperature: 1.0,
            cooling: 0.97,
            proposed: None,
        }
    }
}

impl SimulatedAnnealing {
    /// Creates the technique with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current temperature (exposed for tests).
    pub fn temperature(&self) -> f64 {
        self.temperature
    }
}

impl SearchTechnique for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "simulated-annealing"
    }

    fn propose(&mut self, space: &SearchSpace, history: &History, rng: &mut SmallRng) -> Config {
        let base = match (&self.current, history.best()) {
            (Some((c, _)), _) => c.clone(),
            (None, Some((b, _))) => b.clone(),
            (None, None) => space.random(rng),
        };
        let mut c = base;
        space.clamp(&mut c);
        space.mutate_one(&mut c, rng);
        self.proposed = Some(c.clone());
        c
    }

    fn feedback(&mut self, config: &Config, measurement: &Measurement) {
        if self.proposed.as_ref() != Some(config) {
            return;
        }
        self.proposed = None;
        let value = measurement.value;
        let accept = match &self.current {
            None => measurement.is_feasible(),
            Some((_, cur)) => {
                if value <= *cur {
                    true
                } else if value.is_finite() {
                    // Metropolis on the relative regression.
                    let delta = (value - cur) / cur.abs().max(1e-9);
                    // Deterministic acceptance threshold tied to
                    // temperature (we avoid a second RNG stream here so
                    // replays are stable): accept while the relative
                    // regression is under the current temperature.
                    delta < self.temperature * 0.3
                } else {
                    false
                }
            }
        };
        if accept {
            self.current = Some((config.clone(), value));
        }
        self.temperature *= self.cooling;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{ParamDef, ParamKind};
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![
            ParamDef::new("a", ParamKind::PowerOfTwo { min: 1, max: 128 }),
            ParamDef::new("b", ParamKind::Enum { n: 3 }),
            ParamDef::new("c", ParamKind::IntRange { lo: 0, hi: 15 }),
        ])
    }

    /// Convex objective: distance to a hidden optimum.
    fn objective(c: &Config) -> f64 {
        let target = [5u32, 1, 9];
        c.iter()
            .zip(target.iter())
            .map(|(&v, &t)| ((v as f64) - (t as f64)).powi(2))
            .sum::<f64>()
            + 1.0
    }

    fn drive(mut tech: Box<dyn SearchTechnique + Send>, iters: usize) -> f64 {
        let s = space();
        let mut h = History::new();
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..iters {
            let c = tech.propose(&s, &h, &mut rng);
            assert!(s.contains(&c), "{} proposed out-of-bounds", tech.name());
            let m = Measurement::new(objective(&c), 1.0);
            tech.feedback(&c, &m);
            h.record(c, m, vec![]);
        }
        h.best().unwrap().1
    }

    #[test]
    fn all_techniques_make_progress() {
        // Every technique should land well below a random-sample baseline.
        for (tech, cap) in [
            (
                Box::new(GreedyMutation::new()) as Box<dyn SearchTechnique + Send>,
                3.0,
            ),
            (Box::new(DifferentialEvolution::new()), 10.0),
            (Box::new(ParticleSwarm::new()), 10.0),
            (Box::new(SimulatedAnnealing::new()), 10.0),
        ] {
            let name = tech.name();
            let best = drive(tech, 120);
            assert!(best <= cap, "{name} ended at {best}, cap {cap}");
        }
    }

    #[test]
    fn greedy_mutation_moves_at_least_one_factor_and_mostly_one() {
        let s = space();
        let mut h = History::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let seed: Config = vec![3, 1, 7];
        h.record(seed.clone(), Measurement::new(5.0, 1.0), vec![]);
        let mut g = GreedyMutation::new();
        let mut single = 0usize;
        const N: usize = 200;
        for _ in 0..N {
            let c = g.propose(&s, &h, &mut rng);
            let diffs = c.iter().zip(&seed).filter(|(a, b)| a != b).count();
            assert!(diffs >= 1, "every proposal must move");
            if diffs == 1 {
                single += 1;
            }
        }
        // At a 10% per-factor rate over 3 factors, multi-factor moves are
        // a small tail; the bulk must stay single-factor hill-climb steps.
        assert!(
            single > N * 3 / 4,
            "only {single}/{N} proposals were single-factor"
        );
    }

    #[test]
    fn annealing_cools() {
        let s = space();
        let mut h = History::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sa = SimulatedAnnealing::new();
        let t0 = sa.temperature();
        for _ in 0..10 {
            let c = sa.propose(&s, &h, &mut rng);
            let m = Measurement::new(objective(&c), 1.0);
            sa.feedback(&c, &m);
            h.record(c, m, vec![]);
        }
        assert!(sa.temperature() < t0);
    }

    #[test]
    fn techniques_respect_restricted_spaces() {
        let s = space().restricted(0, 2, 3).restricted(1, 0, 0);
        let mut h = History::new();
        let mut rng = SmallRng::seed_from_u64(11);
        // best from *outside* the partition (global seed) must be clamped
        h.record(vec![7, 2, 15], Measurement::new(2.0, 1.0), vec![]);
        for mut tech in default_portfolio() {
            for _ in 0..30 {
                let c = tech.propose(&s, &h, &mut rng);
                assert!(s.contains(&c), "{} escaped the partition", tech.name());
                tech.feedback(&c, &Measurement::new(objective(&c), 1.0));
            }
        }
    }
}

// --------------------------------------------------------------------------
// Random search (baseline technique, not in the default portfolio)
// --------------------------------------------------------------------------

/// Pure uniform random sampling. Not one of the paper's four techniques —
/// provided as the reference baseline that any learning technique must
/// beat, and useful as a portfolio member in ablation studies.
#[derive(Debug, Default)]
pub struct RandomSearch {
    _private: (),
}

impl RandomSearch {
    /// Creates the technique.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SearchTechnique for RandomSearch {
    fn name(&self) -> &'static str {
        "random-search"
    }

    fn propose(&mut self, space: &SearchSpace, _history: &History, rng: &mut SmallRng) -> Config {
        space.random(rng)
    }

    fn feedback(&mut self, _config: &Config, _measurement: &Measurement) {}
}

#[cfg(test)]
mod random_tests {
    use super::*;
    use crate::param::{ParamDef, ParamKind};
    use rand::SeedableRng;

    #[test]
    fn learning_techniques_beat_random_on_a_structured_landscape() {
        let space = SearchSpace::new(
            (0..6)
                .map(|i| ParamDef::new(format!("p{i}"), ParamKind::IntRange { lo: 0, hi: 31 }))
                .collect(),
        );
        let objective = |c: &Config| -> f64 {
            c.iter().map(|&v| ((v as f64) - 7.0).powi(2)).sum::<f64>() + 1.0
        };
        let drive = |mut tech: Box<dyn SearchTechnique + Send>, seed: u64| -> f64 {
            let mut h = History::new();
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..150 {
                let c = tech.propose(&space, &h, &mut rng);
                let m = Measurement::new(objective(&c), 1.0);
                tech.feedback(&c, &m);
                h.record(c, m, vec![]);
            }
            h.best().unwrap().1
        };
        // average over a few seeds to avoid flakiness
        let avg = |mk: &dyn Fn() -> Box<dyn SearchTechnique + Send>| -> f64 {
            (0..5).map(|s| drive(mk(), 100 + s)).sum::<f64>() / 5.0
        };
        let random = avg(&|| Box::new(RandomSearch::new()));
        let greedy = avg(&|| Box::new(GreedyMutation::new()));
        assert!(
            greedy < random,
            "greedy mutation ({greedy:.1}) should beat random search ({random:.1})"
        );
    }
}
