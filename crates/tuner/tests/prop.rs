//! Property tests for the tuning substrate: space algebra invariants and
//! driver guarantees.

use proptest::prelude::*;
use s2fa_tuner::{
    Config, Measurement, ParamDef, ParamKind, SearchSpace, TimeLimitOnly, TuningOptions, TuningRun,
};

fn arb_space() -> impl Strategy<Value = SearchSpace> {
    prop::collection::vec(
        prop_oneof![
            (1u32..5).prop_map(|p| ParamKind::PowerOfTwo {
                min: 1,
                max: 1 << p
            }),
            (2u32..6).prop_map(|n| ParamKind::Enum { n }),
            (0u32..4, 1u32..8).prop_map(|(lo, span)| ParamKind::IntRange { lo, hi: lo + span }),
        ],
        1..6,
    )
    .prop_map(|kinds| {
        SearchSpace::new(
            kinds
                .into_iter()
                .enumerate()
                .map(|(i, k)| ParamDef::new(format!("p{i}"), k))
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_configs_are_contained(space in arb_space(), seed in any::<u64>()) {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..20 {
            let c = space.random(&mut rng);
            prop_assert!(space.contains(&c));
        }
    }

    #[test]
    fn mutation_stays_contained_and_moves(space in arb_space(), seed in any::<u64>()) {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut c = space.random(&mut rng);
        for _ in 0..20 {
            let before = c.clone();
            if let Some(i) = space.mutate_one(&mut c, &mut rng) {
                prop_assert!(space.contains(&c));
                prop_assert_ne!(&before[i], &c[i], "mutation must change the factor");
                // exactly one coordinate moved
                let diffs = before.iter().zip(&c).filter(|(a, b)| a != b).count();
                prop_assert_eq!(diffs, 1);
            }
        }
    }

    #[test]
    fn restriction_shrinks_and_nests(space in arb_space(), lo in 0u32..3, span in 0u32..3) {
        let full = space.size_log10();
        let r = space.restricted(0, lo, lo + span);
        prop_assert!(r.size_log10() <= full + 1e-12);
        // restricting again can only shrink further
        let r2 = r.restricted(0, lo, lo);
        prop_assert!(r2.size_log10() <= r.size_log10() + 1e-12);
        // bounds remain ordered
        let (blo, bhi) = r.bounds(0);
        prop_assert!(blo <= bhi);
    }

    #[test]
    fn clamp_brings_anything_into_bounds(space in arb_space(), raw in prop::collection::vec(any::<u32>(), 1..6)) {
        let mut c: Vec<u32> = raw;
        c.resize(space.params().len(), 0);
        space.clamp(&mut c);
        prop_assert!(space.contains(&c));
    }

    #[test]
    fn driver_never_exceeds_budget_or_repeats(
        space in arb_space(),
        budget in 10.0f64..100.0,
        seed in any::<u64>(),
    ) {
        let run = TuningRun::new(
            space,
            TuningOptions {
                budget_minutes: budget,
                rng_seed: seed,
                ..TuningOptions::default()
            },
        );
        let out = run.run(
            &mut |cfg: &Config| Measurement::new(cfg.iter().map(|&v| v as f64).sum::<f64>() + 1.0, 3.0),
            &mut TimeLimitOnly,
        );
        prop_assert!(out.elapsed_minutes <= budget + 1e-9);
        let mut seen = std::collections::HashSet::new();
        for e in out.history.evaluations() {
            prop_assert!(seen.insert(e.config.clone()), "duplicate evaluation");
        }
        // the convergence trace is non-increasing in best value
        let conv = out.convergence();
        for w in conv.windows(2) {
            prop_assert!(w[1].1 <= w[0].1 + 1e-12);
        }
    }
}
