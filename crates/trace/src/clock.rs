//! The virtual batch clock.
//!
//! A tuning run charges every evaluation's virtual HLS minutes to a
//! shared clock; with `k`-wide parallel evaluation the clock advances per
//! *batch*, by the slowest member. The accounting rule this module owns:
//! a batch completes as one unit, so **every** event of a batch is
//! stamped with the same batch-completion minute. Stamping events with a
//! running prefix-max instead (the pre-[`BatchClock`] behaviour of
//! `TuningRun::run`) hands out minutes that depend on proposal order
//! within the batch — a spread of inconsistent timestamps for work that,
//! in the modelled machine, all lands at once.

/// A virtual wall-clock advanced batch-by-batch against a budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchClock {
    clock: f64,
    budget: f64,
}

impl BatchClock {
    /// A clock at minute zero with the given budget.
    pub fn new(budget_minutes: f64) -> Self {
        BatchClock {
            clock: 0.0,
            budget: budget_minutes,
        }
    }

    /// Current virtual minute.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// The budget in minutes.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// True while a new batch may still start (the tuning loop condition).
    pub fn within_budget(&self) -> bool {
        self.clock < self.budget
    }

    /// Completes a batch: advances the clock by the *slowest* of the
    /// batch's per-evaluation minutes and returns the batch-completion
    /// minute — the stamp every event of the batch must carry. An empty
    /// batch advances the clock by nothing.
    pub fn complete_batch<I>(&mut self, minutes: I) -> f64
    where
        I: IntoIterator<Item = f64>,
    {
        let slowest = minutes.into_iter().fold(0.0f64, f64::max);
        self.clock += slowest;
        self.clock
    }

    /// True if the last batch ran past the budget — its evaluations were
    /// in flight when the deadline hit.
    pub fn overran(&self) -> bool {
        self.clock > self.budget
    }

    /// Clamps the clock to the budget (the deadline-kill: the clock never
    /// reads past the budget) and returns the final reading.
    pub fn clamp_to_budget(&mut self) -> f64 {
        if self.clock > self.budget {
            self.clock = self.budget;
        }
        self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_by_the_slowest_member() {
        let mut c = BatchClock::new(100.0);
        let stamp = c.complete_batch([3.0, 7.0, 5.0]);
        assert_eq!(stamp, 7.0);
        assert_eq!(c.now(), 7.0);
        let stamp = c.complete_batch([2.0]);
        assert_eq!(stamp, 9.0);
    }

    #[test]
    fn empty_batch_is_free() {
        let mut c = BatchClock::new(10.0);
        assert_eq!(c.complete_batch(std::iter::empty()), 0.0);
        assert!(c.within_budget());
    }

    #[test]
    fn overrun_and_clamp() {
        let mut c = BatchClock::new(10.0);
        c.complete_batch([8.0]);
        assert!(c.within_budget());
        assert!(!c.overran());
        c.complete_batch([5.0]);
        assert!(!c.within_budget());
        assert!(c.overran());
        assert_eq!(c.clamp_to_budget(), 10.0);
        assert!(!c.overran());
        assert_eq!(c.now(), 10.0);
    }

    #[test]
    fn exact_budget_is_not_an_overrun() {
        let mut c = BatchClock::new(10.0);
        c.complete_batch([10.0]);
        assert!(!c.within_budget());
        assert!(!c.overran());
        assert_eq!(c.clamp_to_budget(), 10.0);
    }
}
