#![warn(missing_docs)]

//! # s2fa-trace — virtual-clock accounting and structured observability
//!
//! Every time-series claim this reproduction makes (Fig. 3 is *normalized
//! cycles vs wall-clock minutes*) rests on the minute stamped on a trace
//! event, so clock arithmetic must live in exactly one audited place. This
//! crate is that place, plus the structured-event layer the rest of the
//! pipeline reports through:
//!
//! * [`BatchClock`] — the virtual clock of a batched tuning run. A batch
//!   of `k` parallel evaluations advances the clock by its *slowest*
//!   member (footnote 3 of the paper), and **every** event of the batch is
//!   stamped with the batch-completion minute. This replaces the old
//!   per-event running prefix-max in `TuningRun::run`, which stamped
//!   events inside one batch with inconsistent, proposal-order-dependent
//!   minutes.
//! * [`Event`] — typed pipeline events: evaluations, batched cache
//!   statistics, technique pulls/rewards, partition start/stop, and run
//!   stop reasons. Events serialize to single-line JSON for flight
//!   recording; [`Event::minute`] exposes the virtual stamp uniformly so
//!   the `s2fa-obs` dual-clock correlator can join events against host
//!   wall-time spans.
//! * [`TraceSink`] — the pluggable emission channel: [`NullSink`] (drop
//!   everything), [`RingSink`] (bounded in-memory ring, for tests and
//!   post-hoc inspection), and [`JsonlSink`] (a JSONL flight recorder,
//!   driven by `s2fa_cli --trace out.jsonl`).
//! * [`TechniqueTable`] / [`TechniqueStats`] — per-technique counters
//!   (evaluations, improvements) aggregated from the event stream onto
//!   `TuningOutcome` and `DseOutcome`.
//!
//! ## Two time domains
//!
//! Events carrying a `minute` live on the *virtual* clock — the simulated
//! HLS wall-clock of the paper's experiments, fully deterministic given
//! the RNG seed. Cache-stats and prune events have no minute: they are
//! *host-side* events recording real memo-table and pre-screen activity,
//! and their flush interleaving under a multi-threaded run is
//! OS-dependent even though the totals are deterministic (each event is
//! self-describing, so the flight record stays analyzable). Host
//! *wall-time* is a third concern and deliberately lives outside this
//! crate, in `s2fa-obs` — events never carry host timestamps.

pub mod agg;
pub mod clock;
pub mod event;
pub mod sink;

pub use agg::{TechniqueStats, TechniqueTable};
pub use clock::BatchClock;
pub use event::Event;
pub use sink::{JsonlSink, NullSink, RingSink, TraceSink};
