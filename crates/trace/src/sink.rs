//! Pluggable event sinks.

use crate::event::Event;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// An emission channel for [`Event`]s.
///
/// Sinks are shared by reference across worker threads, so `emit` takes
/// `&self` and implementations must be internally synchronized. Emission
/// must never influence the search — sinks observe, they do not steer.
pub trait TraceSink: Send + Sync + std::fmt::Debug {
    /// Records one event.
    fn emit(&self, event: &Event);

    /// Flushes any buffered output (a no-op for in-memory sinks).
    fn flush(&self) {}

    /// Number of events emitted so far.
    fn emitted(&self) -> u64;
}

/// Drops every event (the default when tracing is off).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&self, _event: &Event) {}

    fn emitted(&self) -> u64 {
        0
    }
}

/// A bounded in-memory ring of the most recent events.
///
/// The total emission count keeps counting past the capacity, so tests
/// and post-hoc inspection can both see the tail and know how much was
/// dropped.
#[derive(Debug)]
pub struct RingSink {
    buf: Mutex<VecDeque<Event>>,
    capacity: usize,
    emitted: AtomicU64,
}

impl RingSink {
    /// A ring holding the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        RingSink {
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            capacity: capacity.max(1),
            emitted: AtomicU64::new(0),
        }
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf.lock().iter().cloned().collect()
    }

    /// Retained events matching a predicate.
    pub fn events_where(&self, f: impl Fn(&Event) -> bool) -> Vec<Event> {
        self.buf.lock().iter().filter(|e| f(e)).cloned().collect()
    }
}

impl Default for RingSink {
    fn default() -> Self {
        RingSink::new(65_536)
    }
}

impl TraceSink for RingSink {
    fn emit(&self, event: &Event) {
        let mut buf = self.buf.lock();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.clone());
        self.emitted.fetch_add(1, Ordering::Relaxed);
    }

    fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }
}

/// A JSONL flight recorder: one event per line, appended to a file.
#[derive(Debug)]
pub struct JsonlSink {
    out: Mutex<BufWriter<std::fs::File>>,
    path: PathBuf,
    emitted: AtomicU64,
}

impl JsonlSink {
    /// Creates (truncating) the flight-record file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::File::create(&path)?;
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(file)),
            path,
            emitted: AtomicU64::new(0),
        })
    }

    /// Path of the flight record.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl TraceSink for JsonlSink {
    fn emit(&self, event: &Event) {
        let line = event.to_json();
        let mut out = self.out.lock();
        // A full disk is not worth crashing a tuning run over; the emitted
        // counter still advances so truncation is detectable.
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
        self.emitted.fetch_add(1, Ordering::Relaxed);
    }

    fn flush(&self) {
        let _ = self.out.lock().flush();
    }

    fn emitted(&self) -> u64 {
        self.emitted.load(Ordering::Relaxed)
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.lock().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_tail_and_counts_everything() {
        let ring = RingSink::new(3);
        for i in 0..5u64 {
            ring.emit(&Event::TechniquePull {
                technique: format!("t{i}"),
                iteration: i,
            });
        }
        assert_eq!(ring.emitted(), 5);
        let evs = ring.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(
            evs[0],
            Event::TechniquePull {
                technique: "t2".into(),
                iteration: 2
            }
        );
    }

    fn cache_stats(hits: u64) -> Event {
        Event::CacheStats {
            hits,
            misses: 1,
            overwrites: 0,
        }
    }

    #[test]
    fn ring_filters() {
        let ring = RingSink::new(8);
        ring.emit(&cache_stats(1));
        ring.emit(&Event::Prune {
            rule: "S2FA-E201".into(),
        });
        ring.emit(&cache_stats(2));
        assert_eq!(
            ring.events_where(|e| matches!(e, Event::CacheStats { .. }))
                .len(),
            2
        );
    }

    #[test]
    fn null_sink_drops() {
        let s = NullSink;
        s.emit(&cache_stats(1));
        assert_eq!(s.emitted(), 0);
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let path = std::env::temp_dir().join("s2fa_trace_sink_test.jsonl");
        let sink = JsonlSink::create(&path).expect("create temp flight record");
        sink.emit(&cache_stats(3));
        sink.emit(&Event::RunStop {
            minute: 3.0,
            evaluations: 2,
            reason: "TimeLimit".into(),
        });
        sink.flush();
        assert_eq!(sink.emitted(), 2);
        let content = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"type\":\"cache_stats\",\"hits\":3,\"misses\":1,\"overwrites\":0}"
        );
        assert!(lines[1].starts_with("{\"type\":\"run_stop\""));
        let _ = std::fs::remove_file(&path);
    }
}
