//! Typed pipeline events and their single-line JSON form.

use std::fmt::Write as _;

/// One structured observability event.
///
/// Events with a `minute` are stamped on the *virtual* clock (see the
/// crate docs); cache events are host-side and carry no minute.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A DSE/tuning run began.
    RunStart {
        /// Kernel under exploration.
        kernel: String,
        /// Virtual budget in minutes.
        budget_minutes: f64,
        /// Number of partitions the space was split into.
        partitions: u64,
    },
    /// One design-point evaluation finished.
    Eval {
        /// Batch-completion minute (all evaluations of one batch share it).
        minute: f64,
        /// Partition index, if the run was partitioned.
        partition: Option<u64>,
        /// Iteration (batch) index within the run.
        iteration: u64,
        /// Technique that proposed the point (`"seed"` for seeds).
        technique: String,
        /// Objective value.
        value: f64,
        /// Incumbent best after this evaluation.
        best_value: f64,
        /// Whether this evaluation improved the incumbent.
        improved: bool,
    },
    /// Aggregated estimate-cache activity since the previous flush.
    ///
    /// Lookups only bump atomic counters on the hot path; the engine
    /// emits one *delta* event per flush point (per partition run and
    /// at run end) instead of one unit event per probe, so the JSONL
    /// sink is off the eval fast path entirely. Host-side, like
    /// `Prune`: no virtual minute, and the split between flushes is
    /// scheduling-dependent even though the totals are deterministic.
    CacheStats {
        /// Lookups served from the memo table since the last flush.
        hits: u64,
        /// Lookups that fell through to the estimator since the last flush.
        misses: u64,
        /// Inserts that replaced an existing entry (two threads raced
        /// to fill the same fingerprint) since the last flush.
        overwrites: u64,
    },
    /// The legality pre-screen rejected a design point before the
    /// estimator or the memo table was consulted. Host-side, like the
    /// cache events: no virtual minute (static analysis is free).
    Prune {
        /// The lint rule that fired (e.g. `S2FA-E201`).
        rule: String,
    },
    /// The bandit selected a technique to propose the next candidate.
    TechniquePull {
        /// Technique name.
        technique: String,
        /// Iteration the pull happened in.
        iteration: u64,
    },
    /// A technique's proposal was measured and credited to the bandit.
    TechniqueReward {
        /// Technique name.
        technique: String,
        /// Whether the proposal improved the incumbent.
        improved: bool,
    },
    /// A partition started exploring on a virtual worker.
    PartitionStart {
        /// Partition index.
        partition: u64,
        /// Virtual worker core.
        worker: u64,
        /// Virtual minute the partition started.
        minute: f64,
    },
    /// A partition finished exploring.
    PartitionStop {
        /// Partition index.
        partition: u64,
        /// Virtual worker core.
        worker: u64,
        /// Virtual minute the partition stopped.
        minute: f64,
        /// Evaluations charged to the partition.
        evaluations: u64,
        /// Evaluations in flight at the deadline (recorded but killed).
        killed_evals: u64,
        /// Best objective found (ms).
        best_value: f64,
        /// Why the partition's run ended.
        reason: String,
    },
    /// The whole run ended.
    RunStop {
        /// Virtual minute the run ended (the makespan for a DSE).
        minute: f64,
        /// Total evaluations.
        evaluations: u64,
        /// Stop reason (a tuning run's `StopReason`, or `"merged"` for a
        /// DSE outcome assembled from per-partition runs).
        reason: String,
    },
    // --- Serving events ------------------------------------------------
    //
    // The Blaze serving runtime stamps its events on a virtual
    // *millisecond* clock (request latencies are sub-second); `minute()`
    // converts so one flight recorder spans the DSE's minute-scale
    // schedule and the serving runtime's ms-scale one.
    /// A tenant submitted a request to the serving runtime.
    Submit {
        /// Virtual millisecond of submission.
        ms: f64,
        /// Request id (unique within a serving run).
        request: u64,
        /// Submitting tenant index.
        tenant: u64,
        /// Target accelerator id.
        accel: String,
    },
    /// Admission control accepted the request.
    Admit {
        /// Virtual millisecond of admission.
        ms: f64,
        /// Request id.
        request: u64,
        /// Tenant's inflight count *after* admitting this request.
        inflight: u64,
    },
    /// Admission control (or a full queue) rejected the request.
    Reject {
        /// Virtual millisecond of rejection.
        ms: f64,
        /// Request id.
        request: u64,
        /// Submitting tenant index.
        tenant: u64,
        /// Why (`"inflight_limit"` / `"queue_full"`).
        reason: String,
    },
    /// The request entered its accelerator's FIFO queue.
    Enqueue {
        /// Virtual millisecond of enqueue.
        ms: f64,
        /// Request id.
        request: u64,
        /// Accelerator id the queue belongs to.
        accel: String,
        /// Queue depth after the enqueue.
        depth: u64,
    },
    /// The batch former closed a batch.
    BatchFormed {
        /// Virtual millisecond the batch closed.
        ms: f64,
        /// Batch id (unique within a serving run).
        batch: u64,
        /// Accelerator id.
        accel: String,
        /// Requests coalesced into the batch.
        size: u64,
        /// Total records (tasks) across those requests.
        tasks: u64,
        /// Why the batch closed (`"full"` / `"deadline"`).
        cause: String,
    },
    /// A worker node started executing a batch.
    Execute {
        /// Virtual millisecond execution started (>= the batch's close
        /// time when every node was busy).
        ms: f64,
        /// Batch id.
        batch: u64,
        /// Simulated worker node index.
        node: u64,
        /// Modelled service time of the batch in ms.
        service_ms: f64,
    },
    /// A request's reply was delivered.
    Reply {
        /// Virtual millisecond of delivery (batch completion).
        ms: f64,
        /// Request id.
        request: u64,
        /// Submitting tenant index.
        tenant: u64,
        /// End-to-end virtual latency (delivery - submission) in ms.
        latency_ms: f64,
        /// Which path executed (`"accel"` / `"fallback"`).
        path: String,
    },
}

impl Event {
    /// Short machine tag of the variant (the JSON `type` field).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run_start",
            Event::Eval { .. } => "eval",
            Event::CacheStats { .. } => "cache_stats",
            Event::Prune { .. } => "prune",
            Event::TechniquePull { .. } => "technique_pull",
            Event::TechniqueReward { .. } => "technique_reward",
            Event::PartitionStart { .. } => "partition_start",
            Event::PartitionStop { .. } => "partition_stop",
            Event::RunStop { .. } => "run_stop",
            Event::Submit { .. } => "submit",
            Event::Admit { .. } => "admit",
            Event::Reject { .. } => "reject",
            Event::Enqueue { .. } => "enqueue",
            Event::BatchFormed { .. } => "batch_formed",
            Event::Execute { .. } => "execute",
            Event::Reply { .. } => "reply",
        }
    }

    /// The virtual-minute stamp of the event, if it carries one.
    ///
    /// `Some` exactly for the variants stamped on a virtual clock: DSE
    /// events with a `minute` field (evaluations, partition start/stop,
    /// run stop) and serving events, whose millisecond stamp is
    /// converted to minutes here. Host-side events (cache stats, prunes,
    /// technique bookkeeping) return `None` — they exist outside the
    /// virtual clock. The dual-clock correlator in `s2fa-obs` keys off
    /// this to join the virtual schedule against host wall-time spans.
    pub fn minute(&self) -> Option<f64> {
        match self {
            Event::Eval { minute, .. }
            | Event::PartitionStart { minute, .. }
            | Event::PartitionStop { minute, .. }
            | Event::RunStop { minute, .. } => Some(*minute),
            Event::Submit { ms, .. }
            | Event::Admit { ms, .. }
            | Event::Reject { ms, .. }
            | Event::Enqueue { ms, .. }
            | Event::BatchFormed { ms, .. }
            | Event::Execute { ms, .. }
            | Event::Reply { ms, .. } => Some(*ms / 60_000.0),
            Event::RunStart { .. }
            | Event::CacheStats { .. }
            | Event::Prune { .. }
            | Event::TechniquePull { .. }
            | Event::TechniqueReward { .. } => None,
        }
    }

    /// Serializes the event as one line of JSON (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push('{');
        push_str_field(&mut s, "type", self.kind());
        match self {
            Event::RunStart {
                kernel,
                budget_minutes,
                partitions,
            } => {
                push_str_field(&mut s, "kernel", kernel);
                push_num_field(&mut s, "budget_minutes", *budget_minutes);
                push_int_field(&mut s, "partitions", *partitions);
            }
            Event::Eval {
                minute,
                partition,
                iteration,
                technique,
                value,
                best_value,
                improved,
            } => {
                push_num_field(&mut s, "minute", *minute);
                if let Some(p) = partition {
                    push_int_field(&mut s, "partition", *p);
                }
                push_int_field(&mut s, "iteration", *iteration);
                push_str_field(&mut s, "technique", technique);
                push_num_field(&mut s, "value", *value);
                push_num_field(&mut s, "best_value", *best_value);
                push_bool_field(&mut s, "improved", *improved);
            }
            Event::CacheStats {
                hits,
                misses,
                overwrites,
            } => {
                push_int_field(&mut s, "hits", *hits);
                push_int_field(&mut s, "misses", *misses);
                push_int_field(&mut s, "overwrites", *overwrites);
            }
            Event::Prune { rule } => {
                push_str_field(&mut s, "rule", rule);
            }
            Event::TechniquePull {
                technique,
                iteration,
            } => {
                push_str_field(&mut s, "technique", technique);
                push_int_field(&mut s, "iteration", *iteration);
            }
            Event::TechniqueReward {
                technique,
                improved,
            } => {
                push_str_field(&mut s, "technique", technique);
                push_bool_field(&mut s, "improved", *improved);
            }
            Event::PartitionStart {
                partition,
                worker,
                minute,
            } => {
                push_int_field(&mut s, "partition", *partition);
                push_int_field(&mut s, "worker", *worker);
                push_num_field(&mut s, "minute", *minute);
            }
            Event::PartitionStop {
                partition,
                worker,
                minute,
                evaluations,
                killed_evals,
                best_value,
                reason,
            } => {
                push_int_field(&mut s, "partition", *partition);
                push_int_field(&mut s, "worker", *worker);
                push_num_field(&mut s, "minute", *minute);
                push_int_field(&mut s, "evaluations", *evaluations);
                push_int_field(&mut s, "killed_evals", *killed_evals);
                push_num_field(&mut s, "best_value", *best_value);
                push_str_field(&mut s, "reason", reason);
            }
            Event::RunStop {
                minute,
                evaluations,
                reason,
            } => {
                push_num_field(&mut s, "minute", *minute);
                push_int_field(&mut s, "evaluations", *evaluations);
                push_str_field(&mut s, "reason", reason);
            }
            Event::Submit {
                ms,
                request,
                tenant,
                accel,
            } => {
                push_num_field(&mut s, "ms", *ms);
                push_int_field(&mut s, "request", *request);
                push_int_field(&mut s, "tenant", *tenant);
                push_str_field(&mut s, "accel", accel);
            }
            Event::Admit {
                ms,
                request,
                inflight,
            } => {
                push_num_field(&mut s, "ms", *ms);
                push_int_field(&mut s, "request", *request);
                push_int_field(&mut s, "inflight", *inflight);
            }
            Event::Reject {
                ms,
                request,
                tenant,
                reason,
            } => {
                push_num_field(&mut s, "ms", *ms);
                push_int_field(&mut s, "request", *request);
                push_int_field(&mut s, "tenant", *tenant);
                push_str_field(&mut s, "reason", reason);
            }
            Event::Enqueue {
                ms,
                request,
                accel,
                depth,
            } => {
                push_num_field(&mut s, "ms", *ms);
                push_int_field(&mut s, "request", *request);
                push_str_field(&mut s, "accel", accel);
                push_int_field(&mut s, "depth", *depth);
            }
            Event::BatchFormed {
                ms,
                batch,
                accel,
                size,
                tasks,
                cause,
            } => {
                push_num_field(&mut s, "ms", *ms);
                push_int_field(&mut s, "batch", *batch);
                push_str_field(&mut s, "accel", accel);
                push_int_field(&mut s, "size", *size);
                push_int_field(&mut s, "tasks", *tasks);
                push_str_field(&mut s, "cause", cause);
            }
            Event::Execute {
                ms,
                batch,
                node,
                service_ms,
            } => {
                push_num_field(&mut s, "ms", *ms);
                push_int_field(&mut s, "batch", *batch);
                push_int_field(&mut s, "node", *node);
                push_num_field(&mut s, "service_ms", *service_ms);
            }
            Event::Reply {
                ms,
                request,
                tenant,
                latency_ms,
                path,
            } => {
                push_num_field(&mut s, "ms", *ms);
                push_int_field(&mut s, "request", *request);
                push_int_field(&mut s, "tenant", *tenant);
                push_num_field(&mut s, "latency_ms", *latency_ms);
                push_str_field(&mut s, "path", path);
            }
        }
        s.push('}');
        s
    }
}

fn push_key(s: &mut String, key: &str) {
    if !s.ends_with('{') {
        s.push(',');
    }
    let _ = write!(s, "\"{key}\":");
}

fn push_str_field(s: &mut String, key: &str, value: &str) {
    push_key(s, key);
    s.push('"');
    for c in value.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

/// Numbers must be valid JSON: non-finite values (infeasible objectives
/// are `+inf`) map to `null`.
fn push_num_field(s: &mut String, key: &str, value: f64) {
    push_key(s, key);
    if value.is_finite() {
        let _ = write!(s, "{value}");
    } else {
        s.push_str("null");
    }
}

fn push_int_field(s: &mut String, key: &str, value: u64) {
    push_key(s, key);
    let _ = write!(s, "{value}");
}

fn push_bool_field(s: &mut String, key: &str, value: bool) {
    push_key(s, key);
    let _ = write!(s, "{value}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_serializes_all_fields() {
        let e = Event::Eval {
            minute: 12.5,
            partition: Some(3),
            iteration: 7,
            technique: "greedy".into(),
            value: 4.25,
            best_value: 4.25,
            improved: true,
        };
        assert_eq!(
            e.to_json(),
            "{\"type\":\"eval\",\"minute\":12.5,\"partition\":3,\"iteration\":7,\
             \"technique\":\"greedy\",\"value\":4.25,\"best_value\":4.25,\"improved\":true}"
        );
    }

    #[test]
    fn eval_without_partition_omits_the_field() {
        let e = Event::Eval {
            minute: 1.0,
            partition: None,
            iteration: 0,
            technique: "seed".into(),
            value: 1.0,
            best_value: 1.0,
            improved: true,
        };
        assert!(!e.to_json().contains("partition"));
    }

    #[test]
    fn infinite_values_become_null() {
        let e = Event::Eval {
            minute: 1.0,
            partition: None,
            iteration: 0,
            technique: "seed".into(),
            value: f64::INFINITY,
            best_value: f64::INFINITY,
            improved: false,
        };
        let j = e.to_json();
        assert!(j.contains("\"value\":null"));
        assert!(j.contains("\"best_value\":null"));
    }

    #[test]
    fn strings_are_escaped() {
        let e = Event::RunStop {
            minute: 0.0,
            evaluations: 0,
            reason: "a\"b\\c\nd".into(),
        };
        assert!(e.to_json().contains(r#""reason":"a\"b\\c\nd""#));
    }

    #[test]
    fn cache_stats_carry_their_counters() {
        let e = Event::CacheStats {
            hits: 40,
            misses: 2,
            overwrites: 1,
        };
        assert_eq!(e.kind(), "cache_stats");
        assert_eq!(
            e.to_json(),
            "{\"type\":\"cache_stats\",\"hits\":40,\"misses\":2,\"overwrites\":1}"
        );
    }

    #[test]
    fn minute_is_some_exactly_for_virtual_clock_events() {
        let stamped = Event::Eval {
            minute: 2.5,
            partition: None,
            iteration: 0,
            technique: "seed".into(),
            value: 1.0,
            best_value: 1.0,
            improved: true,
        };
        assert_eq!(stamped.minute(), Some(2.5));
        assert_eq!(
            Event::RunStop {
                minute: 9.0,
                evaluations: 1,
                reason: "merged".into()
            }
            .minute(),
            Some(9.0)
        );
        assert_eq!(
            Event::CacheStats {
                hits: 1,
                misses: 0,
                overwrites: 0
            }
            .minute(),
            None
        );
        assert_eq!(
            Event::RunStart {
                kernel: "k".into(),
                budget_minutes: 1.0,
                partitions: 1
            }
            .minute(),
            None
        );
    }

    #[test]
    fn prune_carries_its_rule() {
        let e = Event::Prune {
            rule: "S2FA-E201".into(),
        };
        assert_eq!(e.kind(), "prune");
        assert_eq!(e.to_json(), "{\"type\":\"prune\",\"rule\":\"S2FA-E201\"}");
    }

    #[test]
    fn serving_events_serialize() {
        let e = Event::Submit {
            ms: 1.5,
            request: 42,
            tenant: 2,
            accel: "KMeans".into(),
        };
        assert_eq!(
            e.to_json(),
            "{\"type\":\"submit\",\"ms\":1.5,\"request\":42,\"tenant\":2,\"accel\":\"KMeans\"}"
        );
        let e = Event::BatchFormed {
            ms: 3.0,
            batch: 7,
            accel: "S-W".into(),
            size: 4,
            tasks: 64,
            cause: "full".into(),
        };
        assert_eq!(
            e.to_json(),
            "{\"type\":\"batch_formed\",\"ms\":3,\"batch\":7,\"accel\":\"S-W\",\
             \"size\":4,\"tasks\":64,\"cause\":\"full\"}"
        );
        let e = Event::Reply {
            ms: 9.25,
            request: 42,
            tenant: 2,
            latency_ms: 7.75,
            path: "accel".into(),
        };
        assert_eq!(
            e.to_json(),
            "{\"type\":\"reply\",\"ms\":9.25,\"request\":42,\"tenant\":2,\
             \"latency_ms\":7.75,\"path\":\"accel\"}"
        );
        assert_eq!(
            Event::Reject {
                ms: 0.5,
                request: 1,
                tenant: 0,
                reason: "inflight_limit".into()
            }
            .kind(),
            "reject"
        );
        assert_eq!(
            Event::Execute {
                ms: 4.0,
                batch: 7,
                node: 1,
                service_ms: 2.5
            }
            .kind(),
            "execute"
        );
        assert_eq!(
            Event::Admit {
                ms: 1.5,
                request: 42,
                inflight: 3
            }
            .kind(),
            "admit"
        );
        assert_eq!(
            Event::Enqueue {
                ms: 1.5,
                request: 42,
                accel: "LR".into(),
                depth: 5
            }
            .kind(),
            "enqueue"
        );
    }

    #[test]
    fn serving_events_stamp_minutes_from_their_ms_clock() {
        let e = Event::Reply {
            ms: 90_000.0,
            request: 1,
            tenant: 0,
            latency_ms: 3.0,
            path: "fallback".into(),
        };
        assert_eq!(e.minute(), Some(1.5));
        assert_eq!(
            Event::Submit {
                ms: 0.0,
                request: 0,
                tenant: 0,
                accel: "PR".into()
            }
            .minute(),
            Some(0.0)
        );
    }
}
