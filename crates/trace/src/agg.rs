//! Per-technique counter aggregation.

/// Counters for one search technique (`"seed"` counts as a technique).
#[derive(Debug, Clone, PartialEq)]
pub struct TechniqueStats {
    /// Technique name.
    pub technique: String,
    /// Evaluations the technique's proposals consumed.
    pub evals: u64,
    /// Proposals that improved the incumbent.
    pub improvements: u64,
    /// Best objective value among the technique's proposals (`+inf` if
    /// none was feasible).
    pub best_value: f64,
}

impl TechniqueStats {
    /// A zeroed row for `technique`.
    pub fn new(technique: impl Into<String>) -> Self {
        TechniqueStats {
            technique: technique.into(),
            evals: 0,
            improvements: 0,
            best_value: f64::INFINITY,
        }
    }
}

/// An accumulator of [`TechniqueStats`] rows.
///
/// Rows come back sorted by technique name, so tables merged from
/// partitions explored in different orders compare equal.
#[derive(Debug, Clone, Default)]
pub struct TechniqueTable {
    rows: Vec<TechniqueStats>,
}

impl TechniqueTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    fn row_mut(&mut self, technique: &str) -> &mut TechniqueStats {
        if let Some(i) = self.rows.iter().position(|r| r.technique == technique) {
            return &mut self.rows[i];
        }
        self.rows.push(TechniqueStats::new(technique));
        self.rows.last_mut().expect("just pushed")
    }

    /// Credits one evaluation to `technique`.
    pub fn record(&mut self, technique: &str, value: f64, improved: bool) {
        let row = self.row_mut(technique);
        row.evals += 1;
        if improved {
            row.improvements += 1;
        }
        if value < row.best_value {
            row.best_value = value;
        }
    }

    /// Folds another table's rows into this one.
    pub fn merge(&mut self, other: &[TechniqueStats]) {
        for r in other {
            let row = self.row_mut(&r.technique);
            row.evals += r.evals;
            row.improvements += r.improvements;
            if r.best_value < row.best_value {
                row.best_value = r.best_value;
            }
        }
    }

    /// The accumulated rows, sorted by technique name.
    pub fn into_rows(mut self) -> Vec<TechniqueStats> {
        self.rows.sort_by(|a, b| a.technique.cmp(&b.technique));
        self.rows
    }

    /// Total evaluations across all rows.
    pub fn total_evals(&self) -> u64 {
        self.rows.iter().map(|r| r.evals).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_sorts() {
        let mut t = TechniqueTable::new();
        t.record("greedy", 5.0, true);
        t.record("anneal", 7.0, false);
        t.record("greedy", 3.0, true);
        let rows = t.into_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].technique, "anneal");
        assert_eq!(rows[1].technique, "greedy");
        assert_eq!(rows[1].evals, 2);
        assert_eq!(rows[1].improvements, 2);
        assert_eq!(rows[1].best_value, 3.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TechniqueTable::new();
        a.record("greedy", 5.0, true);
        let mut b = TechniqueTable::new();
        b.record("greedy", 2.0, false);
        b.record("swarm", 9.0, true);
        a.merge(&b.into_rows());
        let rows = a.into_rows();
        assert_eq!(rows[0].technique, "greedy");
        assert_eq!(rows[0].evals, 2);
        assert_eq!(rows[0].improvements, 1);
        assert_eq!(rows[0].best_value, 2.0);
        assert_eq!(rows[1].technique, "swarm");
    }

    #[test]
    fn infeasible_values_never_become_best() {
        let mut t = TechniqueTable::new();
        t.record("greedy", f64::INFINITY, false);
        assert_eq!(t.total_evals(), 1);
        assert!(t.into_rows()[0].best_value.is_infinite());
    }
}
