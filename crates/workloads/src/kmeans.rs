//! KMeans — nearest-centroid assignment kernel (classification).
//!
//! The offloaded lambda assigns one point to the nearest of `K` centroids
//! (the compute step of a Lloyd iteration). The closure's captured
//! centroid array travels with each record, exactly how Blaze serializes
//! closure state over its primitive-typed interface.
//!
//! The loop nest is tiny (`K = 8` by `D = 8`), which makes KMeans the
//! kernel with the *smallest design space* — the paper's Fig. 3 exception
//! where vanilla OpenTuner catches up with S2FA because "the design space
//! of KMeans is relatively small, so the benefit of design space partition
//! is marginal".

use crate::common::{rand_f64_array, rng, Workload};
use s2fa_hlsir::KernelSummary;
use s2fa_hlsir::PipelineMode;
use s2fa_merlin::{DesignConfig, LoopDirective};
use s2fa_sjvm::builder::{Expr, FnBuilder};
use s2fa_sjvm::{ClassTable, HostValue, JType, KernelSpec, MethodTable, RddOp, Shape};

/// Number of centroids.
pub const K: u32 = 8;
/// Point dimensionality.
pub const D: u32 = 8;

/// The user-written kernel spec: `(point, centroids) -> cluster id`.
pub fn spec() -> KernelSpec {
    let mut classes = ClassTable::new();
    let darr = JType::array(JType::Double);
    let pair = classes.define_tuple2(darr.clone(), darr.clone());
    let mut methods = MethodTable::new();
    let mut b = FnBuilder::new("call", &[("in", JType::Ref(pair))], Some(JType::Int));
    let input = b.param(0);
    let point = b.local("point", darr.clone());
    let cents = b.local("cents", darr);
    b.set(point, Expr::local(input).field("_1"));
    b.set(cents, Expr::local(input).field("_2"));
    let best = b.local("best", JType::Double);
    let best_k = b.local("best_k", JType::Int);
    let k = b.local("k", JType::Int);
    let j = b.local("j", JType::Int);
    let d = b.local("d", JType::Double);
    let diff = b.local("diff", JType::Double);
    b.set(best, Expr::const_f(1.0e30));
    b.set(best_k, Expr::const_i(0));
    b.for_loop(k, Expr::const_i(0), Expr::const_i(K as i64), |b| {
        b.set(d, Expr::const_f(0.0));
        b.for_loop(j, Expr::const_i(0), Expr::const_i(D as i64), |b| {
            b.set(
                diff,
                Expr::local(point).index(Expr::local(j)).sub(
                    Expr::local(cents).index(
                        Expr::local(k)
                            .mul(Expr::const_i(D as i64))
                            .add(Expr::local(j)),
                    ),
                ),
            );
            b.set(
                d,
                Expr::local(d).add(Expr::local(diff).mul(Expr::local(diff))),
            );
        });
        b.if_then(Expr::local(d).lt(Expr::local(best)), |b| {
            b.set(best, Expr::local(d));
            b.set(best_k, Expr::local(k));
        });
    });
    b.ret(Expr::local(best_k));
    let entry = b.finish(&mut classes, &mut methods).expect("KMeans builds");
    KernelSpec {
        name: "KMeans".into(),
        classes,
        methods,
        entry,
        operator: RddOp::Map,
        input_shape: Shape::pair(
            Shape::Array(JType::Double, D),
            // centroids are captured closure state — broadcast per batch
            Shape::broadcast(Shape::Array(JType::Double, K * D)),
        ),
        output_shape: Shape::Scalar(JType::Int),
    }
}

/// Native reference with identical accumulation/tie-breaking order.
pub fn reference(point: &[f64], cents: &[f64]) -> i64 {
    let mut best = 1.0e30;
    let mut best_k = 0i64;
    for k in 0..K as usize {
        let mut d = 0.0;
        for j in 0..D as usize {
            let diff = point[j] - cents[k * D as usize + j];
            d += diff * diff;
        }
        if d < best {
            best = d;
            best_k = k as i64;
        }
    }
    best_k
}

/// Deterministic input generator (same centroids per batch, as a captured
/// closure value would be).
pub fn gen_input(n: usize, seed: u64) -> Vec<HostValue> {
    let mut r = rng(seed ^ 0x4B4D);
    let cents = rand_f64_array(&mut r, (K * D) as usize);
    (0..n)
        .map(|_| HostValue::pair(rand_f64_array(&mut r, D as usize), cents.clone()))
        .collect()
}

/// The expert design: flatten the distance computation (tiny nest), stage
/// a big task tile in BRAM, widest ports.
/// The expert design: flatten the whole per-point assignment into one
/// spatial datapath, replicate it over 4 task PEs, stream tiles.
pub fn manual_config(summary: &KernelSummary) -> DesignConfig {
    let mut cfg = DesignConfig::area_seed(summary);
    let loops: Vec<_> = summary.loops.iter().map(|l| (l.id, l.depth)).collect();
    for (id, depth) in loops {
        if depth == 0 {
            *cfg.loop_directive_mut(id) = LoopDirective {
                tile: Some(4),
                parallel: 4,
                pipeline: PipelineMode::Flatten,
                tree_reduce: false,
            };
        }
    }
    for (_, bits) in cfg.buffer_bits.iter_mut() {
        *bits = 512;
    }
    cfg
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "KMeans",
        category: "classification",
        spec: spec(),
        manual_spec: spec(),
        manual_config,
        gen_input,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_sjvm::Interp;

    #[test]
    fn interpreter_matches_reference() {
        let spec = spec();
        let mut interp = Interp::new(&spec.classes, &spec.methods);
        for rec in gen_input(6, 3) {
            let (out, _) = interp.run(spec.entry, std::slice::from_ref(&rec)).unwrap();
            let fields = rec.elements().unwrap();
            let point: Vec<f64> = fields[0]
                .elements()
                .unwrap()
                .iter()
                .map(|v| v.as_f64().unwrap())
                .collect();
            let cents: Vec<f64> = fields[1]
                .elements()
                .unwrap()
                .iter()
                .map(|v| v.as_f64().unwrap())
                .collect();
            assert_eq!(out.as_i64().unwrap(), reference(&point, &cents));
        }
    }

    #[test]
    fn picks_the_exact_centroid() {
        // point equal to centroid 5 → cluster 5
        let mut cents = vec![0.0; (K * D) as usize];
        for j in 0..D as usize {
            cents[5 * D as usize + j] = 3.0 + j as f64;
        }
        let point: Vec<f64> = (0..D as usize).map(|j| 3.0 + j as f64).collect();
        assert_eq!(reference(&point, &cents), 5);
    }
}
