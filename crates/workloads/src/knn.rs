//! KNN — nearest-neighbor classification kernel.
//!
//! The offloaded lambda classifies one query point against a reference set
//! of `T = 32` training points (`D = 8` dims each) shipped with the record,
//! returning the label of the nearest neighbor. Distance evaluation over
//! the training set dominates — a classic FPGA-friendly compute pattern,
//! which is why the paper's KNN saturates FF/LUT near 50 %.

use crate::common::{rand_f64_array, rng, Workload};
use rand::Rng;
use s2fa_hlsir::KernelSummary;
use s2fa_hlsir::PipelineMode;
use s2fa_merlin::{DesignConfig, LoopDirective};
use s2fa_sjvm::builder::{Expr, FnBuilder};
use s2fa_sjvm::{ClassTable, HostValue, JType, KernelSpec, MethodTable, RddOp, Shape};

/// Training points per record.
pub const T: u32 = 32;
/// Dimensions per point.
pub const D: u32 = 8;
/// Distinct labels.
pub const LABELS: i64 = 4;

/// The user-written kernel spec: `(query, train, labels) -> label`.
pub fn spec() -> KernelSpec {
    let mut classes = ClassTable::new();
    let darr = JType::array(JType::Double);
    let iarr = JType::array(JType::Int);
    let triple = classes.define_tuple3(darr.clone(), darr.clone(), iarr.clone());
    let mut methods = MethodTable::new();
    let mut b = FnBuilder::new("call", &[("in", JType::Ref(triple))], Some(JType::Int));
    let input = b.param(0);
    let q = b.local("q", darr.clone());
    let train = b.local("train", darr);
    let labels = b.local("labels", iarr);
    b.set(q, Expr::local(input).field("_1"));
    b.set(train, Expr::local(input).field("_2"));
    b.set(labels, Expr::local(input).field("_3"));
    let best = b.local("best", JType::Double);
    let best_l = b.local("best_l", JType::Int);
    let t = b.local("t", JType::Int);
    let j = b.local("j", JType::Int);
    let d = b.local("d", JType::Double);
    let diff = b.local("diff", JType::Double);
    b.set(best, Expr::const_f(1.0e30));
    b.set(best_l, Expr::const_i(0));
    b.for_loop(t, Expr::const_i(0), Expr::const_i(T as i64), |b| {
        b.set(d, Expr::const_f(0.0));
        b.for_loop(j, Expr::const_i(0), Expr::const_i(D as i64), |b| {
            b.set(
                diff,
                Expr::local(q).index(Expr::local(j)).sub(
                    Expr::local(train).index(
                        Expr::local(t)
                            .mul(Expr::const_i(D as i64))
                            .add(Expr::local(j)),
                    ),
                ),
            );
            b.set(
                d,
                Expr::local(d).add(Expr::local(diff).mul(Expr::local(diff))),
            );
        });
        b.if_then(Expr::local(d).lt(Expr::local(best)), |b| {
            b.set(best, Expr::local(d));
            b.set(best_l, Expr::local(labels).index(Expr::local(t)));
        });
    });
    b.ret(Expr::local(best_l));
    let entry = b.finish(&mut classes, &mut methods).expect("KNN builds");
    KernelSpec {
        name: "KNN".into(),
        classes,
        methods,
        entry,
        operator: RddOp::Map,
        input_shape: Shape::Composite(vec![
            Shape::Array(JType::Double, D),
            // reference set and labels are captured closure state
            Shape::broadcast(Shape::Array(JType::Double, T * D)),
            Shape::broadcast(Shape::Array(JType::Int, T)),
        ]),
        output_shape: Shape::Scalar(JType::Int),
    }
}

/// Native reference with identical order.
pub fn reference(q: &[f64], train: &[f64], labels: &[i64]) -> i64 {
    let mut best = 1.0e30;
    let mut best_l = 0;
    for t in 0..T as usize {
        let mut d = 0.0;
        for j in 0..D as usize {
            let diff = q[j] - train[t * D as usize + j];
            d += diff * diff;
        }
        if d < best {
            best = d;
            best_l = labels[t];
        }
    }
    best_l
}

/// Deterministic input generator (shared training set per batch).
pub fn gen_input(n: usize, seed: u64) -> Vec<HostValue> {
    let mut r = rng(seed ^ 0x4B4E);
    let train = rand_f64_array(&mut r, (T * D) as usize);
    let labels = HostValue::Arr(
        (0..T)
            .map(|_| HostValue::I(r.gen_range(0..LABELS)))
            .collect(),
    );
    (0..n)
        .map(|_| {
            HostValue::Tuple(vec![
                rand_f64_array(&mut r, D as usize),
                train.clone(),
                labels.clone(),
            ])
        })
        .collect()
}

/// The expert design: parallelize the training-set scan, flatten the
/// per-point distance, stage task tiles, widest ports.
/// The expert design: one fully spatial distance-scan datapath per task
/// PE, with the cached reference set feeding all lanes.
pub fn manual_config(summary: &KernelSummary) -> DesignConfig {
    let mut cfg = DesignConfig::area_seed(summary);
    let loops: Vec<_> = summary.loops.iter().map(|l| (l.id, l.depth)).collect();
    for (id, depth) in loops {
        if depth == 0 {
            // one spatial distance-scan datapath already issues a task
            // per cycle; replication would blow the DSP budget
            *cfg.loop_directive_mut(id) = LoopDirective {
                tile: Some(4),
                parallel: 1,
                pipeline: PipelineMode::Flatten,
                tree_reduce: false,
            };
        }
    }
    for (_, bits) in cfg.buffer_bits.iter_mut() {
        *bits = 512;
    }
    cfg
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "KNN",
        category: "classification",
        spec: spec(),
        manual_spec: spec(),
        manual_config,
        gen_input,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_sjvm::Interp;

    fn unpack_f64(v: &HostValue) -> Vec<f64> {
        v.elements()
            .unwrap()
            .iter()
            .map(|x| x.as_f64().unwrap())
            .collect()
    }

    #[test]
    fn interpreter_matches_reference() {
        let spec = spec();
        let mut interp = Interp::new(&spec.classes, &spec.methods);
        for rec in gen_input(5, 11) {
            let (out, _) = interp.run(spec.entry, std::slice::from_ref(&rec)).unwrap();
            let f = rec.elements().unwrap();
            let labels: Vec<i64> = f[2]
                .elements()
                .unwrap()
                .iter()
                .map(|x| x.as_i64().unwrap())
                .collect();
            assert_eq!(
                out.as_i64().unwrap(),
                reference(&unpack_f64(&f[0]), &unpack_f64(&f[1]), &labels)
            );
        }
    }

    #[test]
    fn exact_match_returns_its_label() {
        let mut train = vec![10.0; (T * D) as usize];
        // training point 7 = all zeros
        for j in 0..D as usize {
            train[7 * D as usize + j] = 0.0;
        }
        let labels: Vec<i64> = (0..T as i64).collect();
        assert_eq!(reference(&[0.0; D as usize], &train, &labels), 7);
    }
}
