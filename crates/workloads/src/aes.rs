//! AES — block-cipher kernel (string processing).
//!
//! The offloaded lambda encrypts one 16-byte block with an AES-style
//! substitution–permutation network: ten rounds of round-key mixing, an
//! arithmetic S-box substitution, and a byte-diffusion step. (The S-box is
//! computed arithmetically instead of via the Rijndael lookup table so the
//! kernel stays inside S2FA's supported subset; the data movement,
//! integer-only profile, and round structure — the properties that make
//! AES memory-bound with 0 % DSP in Table 2 — are preserved.)

use crate::common::{rng, Workload};
use rand::Rng;
use s2fa_hlsir::KernelSummary;
use s2fa_hlsir::PipelineMode;
use s2fa_merlin::{DesignConfig, LoopDirective};
use s2fa_sjvm::builder::{Expr, FnBuilder};
use s2fa_sjvm::{ClassTable, HostValue, JType, KernelSpec, MethodTable, RddOp, Shape};

/// Block size in bytes.
pub const BLOCK: u32 = 16;
/// Rounds.
pub const ROUNDS: u32 = 10;

/// The user-written kernel spec: `block -> encrypted block`.
pub fn spec() -> KernelSpec {
    let mut classes = ClassTable::new();
    let mut methods = MethodTable::new();
    let barr = JType::array(JType::Byte);
    let mut b = FnBuilder::new(
        "call",
        &[("block", barr.clone())],
        Some(JType::array(JType::Int)),
    );
    let block = b.param(0);
    let st = b.local("st", JType::array(JType::Int));
    let st2 = b.local("st2", JType::array(JType::Int));
    let j = b.local("j", JType::Int);
    let r = b.local("r", JType::Int);
    let v = b.local("v", JType::Int);
    b.set(st, Expr::NewArray(JType::Int, BLOCK));
    b.for_loop(j, Expr::const_i(0), Expr::const_i(BLOCK as i64), |b| {
        b.set_index(
            Expr::local(st),
            Expr::local(j),
            Expr::local(block)
                .index(Expr::local(j))
                .bitand(Expr::const_i(255)),
        );
    });
    b.for_loop(r, Expr::const_i(0), Expr::const_i(ROUNDS as i64), |b| {
        // AddRoundKey + SubBytes (arithmetic S-box)
        let j1 = b.local("j1", JType::Int);
        b.for_loop(j1, Expr::const_i(0), Expr::const_i(BLOCK as i64), |b| {
            b.set(
                v,
                Expr::local(st).index(Expr::local(j1)).bitxor(
                    Expr::local(r)
                        .mul(Expr::const_i(31))
                        .add(Expr::local(j1).mul(Expr::const_i(17)))
                        .add(Expr::const_i(7))
                        .bitand(Expr::const_i(255)),
                ),
            );
            b.set_index(
                Expr::local(st),
                Expr::local(j1),
                Expr::local(v)
                    .mul(Expr::const_i(7))
                    .add(Expr::const_i(99))
                    .bitxor(Expr::local(v).shr(Expr::const_i(4)))
                    .bitand(Expr::const_i(255)),
            );
        });
        // ShiftRows/MixColumns-style byte diffusion
        b.set(st2, Expr::NewArray(JType::Int, BLOCK));
        let j2 = b.local("j2", JType::Int);
        b.for_loop(j2, Expr::const_i(0), Expr::const_i(BLOCK as i64), |b| {
            b.set_index(
                Expr::local(st2),
                Expr::local(j2),
                Expr::local(st).index(Expr::local(j2)).bitxor(
                    Expr::local(st).index(
                        Expr::local(j2)
                            .add(Expr::const_i(5))
                            .bitand(Expr::const_i(15)),
                    ),
                ),
            );
        });
        let j3 = b.local("j3", JType::Int);
        b.for_loop(j3, Expr::const_i(0), Expr::const_i(BLOCK as i64), |b| {
            b.set_index(
                Expr::local(st),
                Expr::local(j3),
                Expr::local(st2).index(Expr::local(j3)),
            );
        });
    });
    b.ret(Expr::local(st));
    let entry = b.finish(&mut classes, &mut methods).expect("AES builds");
    KernelSpec {
        name: "AES".into(),
        classes,
        methods,
        entry,
        operator: RddOp::Map,
        input_shape: Shape::Array(JType::Byte, BLOCK),
        output_shape: Shape::Array(JType::Int, BLOCK),
    }
}

/// Native reference with identical 64-bit integer semantics.
pub fn reference(block: &[i64]) -> Vec<i64> {
    let mut st: Vec<i64> = block.iter().map(|&b| b & 255).collect();
    st.resize(BLOCK as usize, 0);
    for r in 0..ROUNDS as i64 {
        for j in 0..BLOCK as i64 {
            let v = st[j as usize] ^ ((r * 31 + j * 17 + 7) & 255);
            st[j as usize] = ((v * 7 + 99) ^ (v >> 4)) & 255;
        }
        let mut st2 = vec![0i64; BLOCK as usize];
        for j in 0..BLOCK as usize {
            st2[j] = st[j] ^ st[(j + 5) & 15];
        }
        st.copy_from_slice(&st2);
    }
    st
}

/// Deterministic input generator: random printable blocks.
pub fn gen_input(n: usize, seed: u64) -> Vec<HostValue> {
    let mut r = rng(seed ^ 0x4145);
    (0..n)
        .map(|_| {
            HostValue::Arr(
                (0..BLOCK)
                    .map(|_| HostValue::I(r.gen_range(0..256)))
                    .collect(),
            )
        })
        .collect()
}

/// The expert design: flatten each round's byte loops (16-wide SPN
/// stages), pipeline rounds, tile tasks for streaming, widest ports.
/// The expert design: flatten each round stage 16-wide, pipeline rounds,
/// replicate over 8 task PEs, stream 256-task tiles.
pub fn manual_config(summary: &KernelSummary) -> DesignConfig {
    let mut cfg = DesignConfig::area_seed(summary);
    let loops: Vec<_> = summary
        .loops
        .iter()
        .map(|l| (l.id, l.depth, l.trip_count))
        .collect();
    for (id, depth, tc) in loops {
        let d = cfg.loop_directive_mut(id);
        match (depth, tc) {
            (0, _) => {
                *d = LoopDirective {
                    tile: Some(256),
                    parallel: 8,
                    pipeline: PipelineMode::On,
                    tree_reduce: false,
                };
            }
            (1, 10) => {
                // the round loop: pipeline rounds
                *d = LoopDirective {
                    tile: None,
                    parallel: 2,
                    pipeline: PipelineMode::On,
                    tree_reduce: false,
                };
            }
            (1, _) => {
                *d = LoopDirective {
                    tile: None,
                    parallel: 2,
                    pipeline: PipelineMode::Flatten,
                    tree_reduce: false,
                };
            }
            _ => {
                *d = LoopDirective {
                    tile: None,
                    parallel: 4,
                    pipeline: PipelineMode::Flatten,
                    tree_reduce: false,
                };
            }
        }
    }
    for (_, bits) in cfg.buffer_bits.iter_mut() {
        *bits = 512;
    }
    cfg
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "AES",
        category: "string proc.",
        spec: spec(),
        manual_spec: spec(),
        manual_config,
        gen_input,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_sjvm::Interp;

    #[test]
    fn interpreter_matches_reference() {
        let spec = spec();
        let mut interp = Interp::new(&spec.classes, &spec.methods);
        for rec in gen_input(5, 77) {
            let (out, _) = interp.run(spec.entry, std::slice::from_ref(&rec)).unwrap();
            let block: Vec<i64> = rec
                .elements()
                .unwrap()
                .iter()
                .map(|v| v.as_i64().unwrap())
                .collect();
            let want = reference(&block);
            let got: Vec<i64> = out
                .elements()
                .unwrap()
                .iter()
                .map(|v| v.as_i64().unwrap())
                .collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn encryption_diffuses_single_bit() {
        let a = reference(&[0; 16]);
        let mut flipped = [0i64; 16];
        flipped[0] = 1;
        let b = reference(&flipped);
        let differing = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        assert!(differing >= 8, "only {differing} bytes differ");
    }

    #[test]
    fn output_bytes_in_range() {
        for v in reference(&[255; 16]) {
            assert!((0..256).contains(&v));
        }
    }
}
