//! S-W — Smith-Waterman local alignment kernel (string processing).
//!
//! The offloaded lambda computes the optimal local-alignment score of a
//! pair of 128-character sequences with the classic dynamic program
//! (match +2, mismatch −1, gap −1), returning `(score, end position)`.
//! The anti-diagonal dependence structure of the DP — every cell depends
//! on its left, upper, and diagonal neighbours — is what forces the
//! flattened hardware into deep combinational compare chains and drags the
//! paper's S-W design down to 100 MHz.
//!
//! Per DESIGN.md, the traceback that reconstructs the aligned string pair
//! is not offloaded (its irregular `while` control flow lies outside the
//! §3.3 subset); the score/end-position interface preserves the loop nest,
//! dependences, and data movement that drive every reported result.

use crate::common::{rand_dna, rng, Workload};
use s2fa_hlsir::KernelSummary;
use s2fa_hlsir::PipelineMode;
use s2fa_merlin::{DesignConfig, LoopDirective};
use s2fa_sjvm::builder::{Expr, FnBuilder};
use s2fa_sjvm::{ClassTable, HostValue, JType, KernelSpec, MethodTable, RddOp, Shape};

/// Sequence length.
pub const LEN: u32 = 128;
/// Match score.
pub const MATCH: i64 = 2;
/// Mismatch penalty.
pub const MISMATCH: i64 = -1;
/// Gap penalty.
pub const GAP: i64 = -1;

/// The user-written kernel spec: `(a, b) -> (score, end position)`.
pub fn spec() -> KernelSpec {
    let mut classes = ClassTable::new();
    let carr = JType::array(JType::Char);
    let pair_in = classes.define_tuple2(carr.clone(), carr.clone());
    let pair_out = classes.define_tuple2(JType::Int, JType::Int);
    let mut methods = MethodTable::new();
    let mut b = FnBuilder::new(
        "call",
        &[("in", JType::Ref(pair_in))],
        Some(JType::Ref(pair_out)),
    );
    let input = b.param(0);
    let a = b.local("a", carr.clone());
    let s = b.local("s", carr);
    b.set(a, Expr::local(input).field("_1"));
    b.set(s, Expr::local(input).field("_2"));
    let prev = b.local("prev", JType::array(JType::Int));
    let cur = b.local("cur", JType::array(JType::Int));
    b.set(prev, Expr::NewArray(JType::Int, LEN + 1));
    b.set(cur, Expr::NewArray(JType::Int, LEN + 1));
    let best = b.local("best", JType::Int);
    let best_pos = b.local("best_pos", JType::Int);
    b.set(best, Expr::const_i(0));
    b.set(best_pos, Expr::const_i(0));
    let ii = b.local("ii", JType::Int);
    let jj = b.local("jj", JType::Int);
    let kk = b.local("kk", JType::Int);
    let h = b.local("h", JType::Int);
    b.for_loop(ii, Expr::const_i(0), Expr::const_i(LEN as i64), |b| {
        b.for_loop(jj, Expr::const_i(0), Expr::const_i(LEN as i64), |b| {
            let mat = Expr::select(
                Expr::local(a)
                    .index(Expr::local(ii))
                    .eq(Expr::local(s).index(Expr::local(jj))),
                Expr::const_i(MATCH),
                Expr::const_i(MISMATCH),
            );
            let diag = Expr::local(prev).index(Expr::local(jj)).add(mat);
            let up = Expr::local(prev)
                .index(Expr::local(jj).add(Expr::const_i(1)))
                .add(Expr::const_i(GAP));
            let left = Expr::local(cur)
                .index(Expr::local(jj))
                .add(Expr::const_i(GAP));
            b.set(h, Expr::const_i(0).max(diag.max(up.max(left))));
            b.set_index(
                Expr::local(cur),
                Expr::local(jj).add(Expr::const_i(1)),
                Expr::local(h),
            );
            b.if_then(Expr::local(h).gt(Expr::local(best)), |b| {
                b.set(best, Expr::local(h));
                b.set(
                    best_pos,
                    Expr::local(ii)
                        .mul(Expr::const_i(LEN as i64))
                        .add(Expr::local(jj)),
                );
            });
        });
        b.for_loop(kk, Expr::const_i(0), Expr::const_i((LEN + 1) as i64), |b| {
            b.set_index(
                Expr::local(prev),
                Expr::local(kk),
                Expr::local(cur).index(Expr::local(kk)),
            );
        });
    });
    b.ret(Expr::NewObj(
        pair_out,
        vec![Expr::local(best), Expr::local(best_pos)],
    ));
    let entry = b.finish(&mut classes, &mut methods).expect("S-W builds");
    KernelSpec {
        name: "S-W".into(),
        classes,
        methods,
        entry,
        operator: RddOp::Map,
        input_shape: Shape::pair(
            Shape::Array(JType::Char, LEN),
            Shape::Array(JType::Char, LEN),
        ),
        output_shape: Shape::pair(Shape::Scalar(JType::Int), Shape::Scalar(JType::Int)),
    }
}

/// Native reference with identical order and tie-breaking.
pub fn reference(a: &[u8], s: &[u8]) -> (i64, i64) {
    let n = LEN as usize;
    let mut prev = vec![0i64; n + 1];
    let mut cur = vec![0i64; n + 1];
    let mut best = 0i64;
    let mut best_pos = 0i64;
    let at = |x: &[u8], i: usize| -> i64 { x.get(i).copied().unwrap_or(0) as i64 };
    for ii in 0..n {
        for jj in 0..n {
            let mat = if at(a, ii) == at(s, jj) {
                MATCH
            } else {
                MISMATCH
            };
            let diag = prev[jj] + mat;
            let up = prev[jj + 1] + GAP;
            let left = cur[jj] + GAP;
            let h = 0.max(diag.max(up.max(left)));
            cur[jj + 1] = h;
            if h > best {
                best = h;
                best_pos = (ii * n + jj) as i64;
            }
        }
        prev.copy_from_slice(&cur);
    }
    (best, best_pos)
}

/// Deterministic input generator: DNA pairs with planted similarity.
pub fn gen_input(n: usize, seed: u64) -> Vec<HostValue> {
    let mut r = rng(seed ^ 0x5357);
    (0..n)
        .map(|_| {
            let a = rand_dna(&mut r, LEN as usize);
            // second sequence shares a planted subsequence with the first
            let mut b: Vec<u8> = rand_dna(&mut r, LEN as usize).into_bytes();
            let start = (LEN / 4) as usize;
            let span = (LEN / 2) as usize;
            b[start..start + span].copy_from_slice(&a.as_bytes()[start..start + span]);
            HostValue::pair(
                HostValue::Str(a),
                HostValue::Str(String::from_utf8(b).expect("dna is ascii")),
            )
        })
        .collect()
}

/// The expert design: a systolic wavefront — flatten the inner DP row so
/// all 128 cells update per cycle group, pipeline rows, replicate over
/// task pairs. The deep compare chains cost clock frequency (the paper's
/// 100 MHz row in Table 2).
pub fn manual_config(summary: &KernelSummary) -> DesignConfig {
    let mut cfg = DesignConfig::area_seed(summary);
    let loops: Vec<_> = summary
        .loops
        .iter()
        .map(|l| (l.id, l.depth, l.trip_count))
        .collect();
    for (id, depth, tc) in loops {
        let d = cfg.loop_directive_mut(id);
        match (depth, tc) {
            (0, _) => {
                *d = LoopDirective {
                    tile: Some(32),
                    parallel: 2,
                    pipeline: PipelineMode::On,
                    tree_reduce: false,
                };
            }
            (1, _) => {
                // the row (ii) loop: flatten its body row-parallel
                *d = LoopDirective {
                    tile: None,
                    parallel: 1,
                    pipeline: PipelineMode::Flatten,
                    tree_reduce: false,
                };
            }
            _ => {}
        }
    }
    for (_, bits) in cfg.buffer_bits.iter_mut() {
        *bits = 512;
    }
    cfg
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "S-W",
        category: "string proc.",
        spec: spec(),
        manual_spec: spec(),
        manual_config,
        gen_input,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_sjvm::Interp;

    #[test]
    fn interpreter_matches_reference() {
        let spec = spec();
        let mut interp = Interp::new(&spec.classes, &spec.methods);
        for rec in gen_input(2, 13) {
            let (out, _) = interp.run(spec.entry, std::slice::from_ref(&rec)).unwrap();
            let f = rec.elements().unwrap();
            let (HostValue::Str(a), HostValue::Str(b)) = (&f[0], &f[1]) else {
                panic!("generator produces strings")
            };
            let (score, pos) = reference(a.as_bytes(), b.as_bytes());
            let got = out.elements().unwrap();
            assert_eq!(got[0].as_i64(), Some(score));
            assert_eq!(got[1].as_i64(), Some(pos));
        }
    }

    #[test]
    fn identical_sequences_score_perfectly() {
        let a = vec![b'A'; LEN as usize];
        let (score, _) = reference(&a, &a);
        assert_eq!(score, MATCH * LEN as i64);
    }

    #[test]
    fn disjoint_alphabets_score_zero() {
        let a = vec![b'A'; LEN as usize];
        let b = vec![b'T'; LEN as usize];
        let (score, _) = reference(&a, &b);
        assert_eq!(score, 0);
    }

    #[test]
    fn planted_similarity_is_found() {
        let rec = gen_input(1, 99).pop().unwrap();
        let f = rec.elements().unwrap();
        let (HostValue::Str(a), HostValue::Str(b)) = (&f[0], &f[1]) else {
            panic!()
        };
        let (score, _) = reference(a.as_bytes(), b.as_bytes());
        // the planted half-length identical span guarantees a big score
        assert!(score >= (LEN / 2) as i64, "score {score}");
    }
}
