//! The common workload interface used by the experiment harness.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use s2fa_hlsir::KernelSummary;
use s2fa_merlin::DesignConfig;
use s2fa_sjvm::{HostValue, KernelSpec};

/// One evaluation workload: the user-written kernel, its data, and the
/// expert manual design it is compared against in Fig. 4.
pub struct Workload {
    /// Kernel name as reported in Table 2.
    pub name: &'static str,
    /// Application category column of Table 2.
    pub category: &'static str,
    /// The user-written Spark kernel (input to the automatic flow).
    pub spec: KernelSpec,
    /// The kernel the expert implements by hand. Usually identical to
    /// [`spec`](Self::spec); for LR the expert restructured the lambda
    /// itself (piecewise-linear sigmoid) as the paper describes.
    pub manual_spec: KernelSpec,
    /// The expert's design configuration, built against the manual
    /// kernel's analysis summary.
    pub manual_config: fn(&KernelSummary) -> DesignConfig,
    /// Deterministic input generator.
    pub gen_input: fn(usize, u64) -> Vec<HostValue>,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("category", &self.category)
            .finish_non_exhaustive()
    }
}

/// All eight workloads in Table 2 order.
pub fn all_workloads() -> Vec<Workload> {
    vec![
        crate::pr::workload(),
        crate::kmeans::workload(),
        crate::knn::workload(),
        crate::lr::workload(),
        crate::svm::workload(),
        crate::lls::workload(),
        crate::aes::workload(),
        crate::sw::workload(),
    ]
}

/// Seeded RNG for generators.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// A random `f64` array in [-1, 1) as a host value.
pub fn rand_f64_array(rng: &mut SmallRng, n: usize) -> HostValue {
    HostValue::Arr(
        (0..n)
            .map(|_| HostValue::F(rng.gen_range(-1.0..1.0)))
            .collect(),
    )
}

/// A random DNA-alphabet string of exactly `n` characters.
pub fn rand_dna(rng: &mut SmallRng, n: usize) -> String {
    const ALPHABET: [u8; 4] = [b'A', b'C', b'G', b'T'];
    (0..n)
        .map(|_| ALPHABET[rng.gen_range(0..4usize)] as char)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let mut a = rng(7);
        let mut b = rng(7);
        assert_eq!(rand_f64_array(&mut a, 8), rand_f64_array(&mut b, 8));
        assert_eq!(rand_dna(&mut a, 32), rand_dna(&mut b, 32));
    }

    #[test]
    fn all_workloads_build_and_verify() {
        let ws = all_workloads();
        assert_eq!(ws.len(), 8);
        let names: Vec<_> = ws.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec!["PR", "KMeans", "KNN", "LR", "SVM", "LLS", "AES", "S-W"]
        );
        for w in &ws {
            w.spec.verify().expect(w.name);
            w.manual_spec.verify().expect(w.name);
            let input = (w.gen_input)(4, 1);
            assert_eq!(input.len(), 4, "{}", w.name);
        }
    }
}
