//! LLS — least-linear-squares gradient kernel (regression).
//!
//! The offloaded lambda computes one sample's least-squares gradient
//! contribution `g = (wᵀx − y) · x` — the core of gradient-descent linear
//! regression.

use crate::common::{rand_f64_array, rng, Workload};
use rand::Rng;
use s2fa_hlsir::KernelSummary;
use s2fa_hlsir::PipelineMode;
use s2fa_merlin::{DesignConfig, LoopDirective};
use s2fa_sjvm::builder::{Expr, FnBuilder};
use s2fa_sjvm::{ClassTable, HostValue, JType, KernelSpec, MethodTable, RddOp, Shape};

/// Feature dimensionality.
pub const D: u32 = 16;

/// The user-written kernel spec: `(x, y, w) -> gradient`.
pub fn spec() -> KernelSpec {
    let mut classes = ClassTable::new();
    let darr = JType::array(JType::Double);
    let triple = classes.define_tuple3(darr.clone(), JType::Double, darr.clone());
    let mut methods = MethodTable::new();
    let mut b = FnBuilder::new("call", &[("in", JType::Ref(triple))], Some(darr.clone()));
    let input = b.param(0);
    let x = b.local("x", darr.clone());
    let w = b.local("w", darr.clone());
    let y = b.local("y", JType::Double);
    b.set(x, Expr::local(input).field("_1"));
    b.set(y, Expr::local(input).field("_2"));
    b.set(w, Expr::local(input).field("_3"));
    let s = b.local("s", JType::Double);
    let j = b.local("j", JType::Int);
    b.set(s, Expr::const_f(0.0));
    b.for_loop(j, Expr::const_i(0), Expr::const_i(D as i64), |b| {
        b.set(
            s,
            Expr::local(s).add(
                Expr::local(w)
                    .index(Expr::local(j))
                    .mul(Expr::local(x).index(Expr::local(j))),
            ),
        );
    });
    let r = b.local("r", JType::Double);
    b.set(r, Expr::local(s).sub(Expr::local(y)));
    let g = b.local("g", darr);
    b.set(g, Expr::NewArray(JType::Double, D));
    let j2 = b.local("j2", JType::Int);
    b.for_loop(j2, Expr::const_i(0), Expr::const_i(D as i64), |b| {
        b.set_index(
            Expr::local(g),
            Expr::local(j2),
            Expr::local(r).mul(Expr::local(x).index(Expr::local(j2))),
        );
    });
    b.ret(Expr::local(g));
    let entry = b.finish(&mut classes, &mut methods).expect("LLS builds");
    KernelSpec {
        name: "LLS".into(),
        classes,
        methods,
        entry,
        operator: RddOp::Map,
        input_shape: Shape::Composite(vec![
            Shape::Array(JType::Double, D),
            Shape::Scalar(JType::Double),
            // the weight vector is captured closure state
            Shape::broadcast(Shape::Array(JType::Double, D)),
        ]),
        output_shape: Shape::Array(JType::Double, D),
    }
}

/// Native reference with identical order.
pub fn reference(x: &[f64], y: f64, w: &[f64]) -> Vec<f64> {
    let mut s = 0.0;
    for j in 0..D as usize {
        s += w[j] * x[j];
    }
    let r = s - y;
    x.iter().take(D as usize).map(|&xj| r * xj).collect()
}

/// Deterministic input generator (shared weights per batch).
pub fn gen_input(n: usize, seed: u64) -> Vec<HostValue> {
    let mut r = rng(seed ^ 0x4C4C);
    let w = rand_f64_array(&mut r, D as usize);
    (0..n)
        .map(|_| {
            HostValue::Tuple(vec![
                rand_f64_array(&mut r, D as usize),
                HostValue::F(r.gen_range(-2.0..2.0)),
                w.clone(),
            ])
        })
        .collect()
}

/// The expert design (same family as SVM's: tree-reduced dot, parallel
/// gradient, tiling, wide ports).
/// The expert design: a fully spatial per-sample gradient datapath
/// replicated over 16 task PEs.
pub fn manual_config(summary: &KernelSummary) -> DesignConfig {
    let mut cfg = DesignConfig::area_seed(summary);
    let loops: Vec<_> = summary.loops.iter().map(|l| (l.id, l.depth)).collect();
    for (id, depth) in loops {
        if depth == 0 {
            *cfg.loop_directive_mut(id) = LoopDirective {
                tile: Some(4),
                parallel: 16,
                pipeline: PipelineMode::Flatten,
                tree_reduce: false,
            };
        }
    }
    for (_, bits) in cfg.buffer_bits.iter_mut() {
        *bits = 512;
    }
    cfg
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "LLS",
        category: "regression",
        spec: spec(),
        manual_spec: spec(),
        manual_config,
        gen_input,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_sjvm::Interp;

    #[test]
    fn interpreter_matches_reference() {
        let spec = spec();
        let mut interp = Interp::new(&spec.classes, &spec.methods);
        for rec in gen_input(6, 21) {
            let (out, _) = interp.run(spec.entry, std::slice::from_ref(&rec)).unwrap();
            let f = rec.elements().unwrap();
            let unpack = |v: &HostValue| -> Vec<f64> {
                v.elements()
                    .unwrap()
                    .iter()
                    .map(|x| x.as_f64().unwrap())
                    .collect()
            };
            let want = reference(&unpack(&f[0]), f[1].as_f64().unwrap(), &unpack(&f[2]));
            let got = unpack(&out);
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn zero_residual_gives_zero_gradient() {
        let x = vec![1.0; D as usize];
        let w = vec![0.25; D as usize];
        let y = 0.25 * D as f64;
        let g = reference(&x, y, &w);
        assert!(g.iter().all(|v| v.abs() < 1e-12));
    }
}
