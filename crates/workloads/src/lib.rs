#![warn(missing_docs)]

//! # s2fa-workloads — the paper's evaluation kernels
//!
//! The eight Spark kernels of Table 2, authored in the builder DSL (the
//! Scala stand-in) and lowered to bytecode exactly as a Spark application
//! would deliver them to S2FA:
//!
//! | Kernel | Type | Module |
//! |--------|------|--------|
//! | PR (PageRank)                | graph proc.    | [`pr`] |
//! | KMeans (K-Means)             | classification | [`kmeans`] |
//! | KNN (K-Nearest Neighbor)     | classification | [`knn`] |
//! | LR (Logistic Regression)     | regression     | [`lr`] |
//! | SVM (Support Vector Machine) | regression     | [`svm`] |
//! | LLS (Least linear square)    | regression     | [`lls`] |
//! | AES (encryption)             | string proc.   | [`aes`] |
//! | S-W (Smith-Waterman)         | string proc.   | [`sw`] |
//!
//! Each module provides the kernel spec, a deterministic input generator,
//! a native Rust reference implementation (the correctness oracle beside
//! the JVM interpreter), and the *manual expert design* used as the Fig. 4
//! baseline — either a hand-picked configuration or, where the paper's
//! expert restructured the code itself (LR), a rewritten kernel.
//!
//! Scope note (documented in DESIGN.md): S-W reports the optimal local
//! alignment score and end position instead of reconstructing the aligned
//! string pair — the DP loop nest, the dependence structure, and the
//! interface shape that drive the paper's results are identical, but the
//! traceback (irregular bounded-`while` control flow) lies outside the
//! §3.3 subset our decompiler accepts.

pub mod aes;
pub mod common;
pub mod kmeans;
pub mod knn;
pub mod lls;
pub mod lr;
pub mod pr;
pub mod svm;
pub mod sw;

pub use common::{all_workloads, Workload};
