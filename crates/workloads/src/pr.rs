//! PR — PageRank contribution kernel (graph processing).
//!
//! The offloaded lambda computes one node's new rank from the rank
//! contributions gathered from its in-neighbors:
//! `rank' = 0.15 + 0.85 · Σ contribs[j]`. With 32 contributions in and a
//! single double out, the kernel moves many bytes per floating add — the
//! memory-bound profile the paper reports for PR (low resource
//! utilization, modest speedup even for the manual design).

use crate::common::{rand_f64_array, rng, Workload};
use s2fa_hlsir::KernelSummary;
use s2fa_hlsir::PipelineMode;
use s2fa_merlin::{DesignConfig, LoopDirective};
use s2fa_sjvm::builder::{Expr, FnBuilder};
use s2fa_sjvm::{ClassTable, HostValue, JType, KernelSpec, MethodTable, RddOp, Shape};

/// In-neighbor contributions per node.
pub const DEGREE: u32 = 32;
/// Damping factor.
pub const DAMPING: f64 = 0.85;

/// The user-written kernel spec.
pub fn spec() -> KernelSpec {
    let mut classes = ClassTable::new();
    let mut methods = MethodTable::new();
    let contribs_ty = JType::array(JType::Double);
    let mut b = FnBuilder::new("call", &[("contribs", contribs_ty)], Some(JType::Double));
    let contribs = b.param(0);
    let s = b.local("s", JType::Double);
    let j = b.local("j", JType::Int);
    b.set(s, Expr::const_f(0.0));
    b.for_loop(j, Expr::const_i(0), Expr::const_i(DEGREE as i64), |b| {
        b.set(
            s,
            Expr::local(s).add(Expr::local(contribs).index(Expr::local(j))),
        );
    });
    b.ret(Expr::const_f(1.0 - DAMPING).add(Expr::const_f(DAMPING).mul(Expr::local(s))));
    let entry = b.finish(&mut classes, &mut methods).expect("PR builds");
    KernelSpec {
        name: "PR".into(),
        classes,
        methods,
        entry,
        operator: RddOp::Map,
        input_shape: Shape::Array(JType::Double, DEGREE),
        output_shape: Shape::Scalar(JType::Double),
    }
}

/// Native reference (same accumulation order as the bytecode).
pub fn reference(contribs: &[f64]) -> f64 {
    let mut s = 0.0;
    for &c in contribs {
        s += c;
    }
    (1.0 - DAMPING) + DAMPING * s
}

/// Deterministic input generator.
pub fn gen_input(n: usize, seed: u64) -> Vec<HostValue> {
    let mut r = rng(seed ^ 0x5052);
    (0..n)
        .map(|_| rand_f64_array(&mut r, DEGREE as usize))
        .collect()
}

/// The expert design: wide ports, fully parallel tree reduction, task
/// tiling for transfer overlap — PR is bandwidth-bound so this is as good
/// as it gets.
/// The expert design: wide ports, tree-reduced parallel accumulation,
/// task tiling for transfer overlap — PR is bandwidth-bound so this is as
/// good as it gets.
pub fn manual_config(summary: &KernelSummary) -> DesignConfig {
    let mut cfg = DesignConfig::area_seed(summary);
    let loops: Vec<_> = summary.loops.iter().map(|l| (l.id, l.depth)).collect();
    for (id, depth) in loops {
        let d = cfg.loop_directive_mut(id);
        if depth == 0 {
            *d = LoopDirective {
                tile: Some(4),
                parallel: 16,
                pipeline: PipelineMode::On,
                tree_reduce: false,
            };
        } else {
            *d = LoopDirective {
                tile: None,
                parallel: 8,
                pipeline: PipelineMode::On,
                tree_reduce: true,
            };
        }
    }
    for (_, bits) in cfg.buffer_bits.iter_mut() {
        *bits = 512;
    }
    cfg
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "PR",
        category: "graph proc.",
        spec: spec(),
        manual_spec: spec(),
        manual_config,
        gen_input,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_sjvm::Interp;

    #[test]
    fn interpreter_matches_reference() {
        let spec = spec();
        let mut interp = Interp::new(&spec.classes, &spec.methods);
        for rec in gen_input(8, 42) {
            let (out, _) = interp.run(spec.entry, std::slice::from_ref(&rec)).unwrap();
            let contribs: Vec<f64> = rec
                .elements()
                .unwrap()
                .iter()
                .map(|v| v.as_f64().unwrap())
                .collect();
            assert!((out.as_f64().unwrap() - reference(&contribs)).abs() < 1e-12);
        }
    }

    #[test]
    fn rank_of_zero_contributions_is_teleport() {
        assert!((reference(&[0.0; 32]) - 0.15).abs() < 1e-12);
    }
}
