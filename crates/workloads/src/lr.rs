//! LR — logistic-regression gradient kernel.
//!
//! The offloaded lambda computes one sample's gradient contribution:
//! `g = (σ(wᵀx) − y) · x` with the exact sigmoid (`exp` + divide). The
//! deep floating-point operator chain is what limits the automatic design
//! — the paper reports "the core computation of LR is the regression model
//! that involves floating point multiplication and exponential calculation
//! so the minimal initiation interval is still 13", leaving a visible gap
//! to the manual design.
//!
//! The expert's manual implementation restructures the *code itself* ("The
//! LR manual design splits the computation statement to multiple stages to
//! form a highly efficient pipeline"): here that is modelled by the
//! classic hand-optimization of replacing the exact sigmoid with a
//! piecewise-linear approximation ([`manual_spec`]), which removes the
//! transcendental from the pipeline entirely.

use crate::common::{rand_f64_array, rng, Workload};
use rand::Rng;
use s2fa_hlsir::KernelSummary;
use s2fa_hlsir::PipelineMode;
use s2fa_merlin::{DesignConfig, LoopDirective};
use s2fa_sjvm::builder::{Expr, FnBuilder};
use s2fa_sjvm::{ClassTable, HostValue, JType, KernelSpec, MethodTable, RddOp, Shape};

/// Feature dimensionality.
pub const D: u32 = 16;

fn build(name: &str, exact_sigmoid: bool) -> KernelSpec {
    let mut classes = ClassTable::new();
    let darr = JType::array(JType::Double);
    let triple = classes.define_tuple3(darr.clone(), JType::Double, darr.clone());
    let mut methods = MethodTable::new();
    let mut b = FnBuilder::new("call", &[("in", JType::Ref(triple))], Some(darr.clone()));
    let input = b.param(0);
    let x = b.local("x", darr.clone());
    let w = b.local("w", darr.clone());
    let y = b.local("y", JType::Double);
    b.set(x, Expr::local(input).field("_1"));
    b.set(y, Expr::local(input).field("_2"));
    b.set(w, Expr::local(input).field("_3"));
    let s = b.local("s", JType::Double);
    let p = b.local("p", JType::Double);
    let j = b.local("j", JType::Int);
    let g = b.local("g", darr);
    b.set(s, Expr::const_f(0.0));
    b.for_loop(j, Expr::const_i(0), Expr::const_i(D as i64), |b| {
        b.set(
            s,
            Expr::local(s).add(
                Expr::local(w)
                    .index(Expr::local(j))
                    .mul(Expr::local(x).index(Expr::local(j))),
            ),
        );
    });
    if exact_sigmoid {
        // p = 1 / (1 + exp(-s))
        b.set(
            p,
            Expr::const_f(1.0).div(Expr::const_f(1.0).add(Expr::local(s).neg().exp())),
        );
    } else {
        // piecewise-linear sigmoid: clamp(0.5 + 0.125·s, 0, 1)
        b.set(
            p,
            Expr::const_f(0.5)
                .add(Expr::const_f(0.125).mul(Expr::local(s)))
                .max(Expr::const_f(0.0))
                .min(Expr::const_f(1.0)),
        );
    }
    b.set(g, Expr::NewArray(JType::Double, D));
    let j2 = b.local("j2", JType::Int);
    b.for_loop(j2, Expr::const_i(0), Expr::const_i(D as i64), |b| {
        b.set_index(
            Expr::local(g),
            Expr::local(j2),
            Expr::local(p)
                .sub(Expr::local(y))
                .mul(Expr::local(x).index(Expr::local(j2))),
        );
    });
    b.ret(Expr::local(g));
    let entry = b.finish(&mut classes, &mut methods).expect("LR builds");
    KernelSpec {
        name: name.into(),
        classes,
        methods,
        entry,
        operator: RddOp::Map,
        input_shape: Shape::Composite(vec![
            Shape::Array(JType::Double, D),
            Shape::Scalar(JType::Double),
            // the weight vector is captured closure state
            Shape::broadcast(Shape::Array(JType::Double, D)),
        ]),
        output_shape: Shape::Array(JType::Double, D),
    }
}

/// The user-written kernel (exact sigmoid).
pub fn spec() -> KernelSpec {
    build("LR", true)
}

/// The expert's restructured kernel (piecewise-linear sigmoid).
pub fn manual_spec() -> KernelSpec {
    build("LR", false)
}

/// Native reference of the exact-sigmoid kernel.
pub fn reference(x: &[f64], y: f64, w: &[f64]) -> Vec<f64> {
    let mut s = 0.0;
    for j in 0..D as usize {
        s += w[j] * x[j];
    }
    let p = 1.0 / (1.0 + (-s).exp());
    x.iter().take(D as usize).map(|&xj| (p - y) * xj).collect()
}

/// Deterministic input generator (shared weights per batch).
pub fn gen_input(n: usize, seed: u64) -> Vec<HostValue> {
    let mut r = rng(seed ^ 0x4C52);
    let w = rand_f64_array(&mut r, D as usize);
    (0..n)
        .map(|_| {
            HostValue::Tuple(vec![
                rand_f64_array(&mut r, D as usize),
                HostValue::F(if r.gen_bool(0.5) { 1.0 } else { 0.0 }),
                w.clone(),
            ])
        })
        .collect()
}

/// The expert design over the restructured kernel.
/// The expert design over the restructured kernel: a fully spatial
/// per-sample gradient datapath replicated over 16 task PEs.
pub fn manual_config(summary: &KernelSummary) -> DesignConfig {
    let mut cfg = DesignConfig::area_seed(summary);
    let loops: Vec<_> = summary.loops.iter().map(|l| (l.id, l.depth)).collect();
    for (id, depth) in loops {
        if depth == 0 {
            *cfg.loop_directive_mut(id) = LoopDirective {
                tile: Some(4),
                parallel: 16,
                pipeline: PipelineMode::Flatten,
                tree_reduce: false,
            };
        }
    }
    for (_, bits) in cfg.buffer_bits.iter_mut() {
        *bits = 512;
    }
    cfg
}

/// The packaged workload.
pub fn workload() -> Workload {
    Workload {
        name: "LR",
        category: "regression",
        spec: spec(),
        manual_spec: manual_spec(),
        manual_config,
        gen_input,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_sjvm::Interp;

    #[test]
    fn interpreter_matches_reference() {
        let spec = spec();
        let mut interp = Interp::new(&spec.classes, &spec.methods);
        for rec in gen_input(5, 9) {
            let (out, _) = interp.run(spec.entry, std::slice::from_ref(&rec)).unwrap();
            let f = rec.elements().unwrap();
            let x: Vec<f64> = f[0]
                .elements()
                .unwrap()
                .iter()
                .map(|v| v.as_f64().unwrap())
                .collect();
            let y = f[1].as_f64().unwrap();
            let w: Vec<f64> = f[2]
                .elements()
                .unwrap()
                .iter()
                .map(|v| v.as_f64().unwrap())
                .collect();
            let want = reference(&x, y, &w);
            let got: Vec<f64> = out
                .elements()
                .unwrap()
                .iter()
                .map(|v| v.as_f64().unwrap())
                .collect();
            for (a, b) in got.iter().zip(&want) {
                assert!((a - b).abs() < 1e-12, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn pwl_sigmoid_tracks_exact_near_zero() {
        // both kernels agree reasonably for small margins
        let exact = spec();
        let manual = manual_spec();
        let rec = gen_input(1, 5).pop().unwrap();
        let mut ie = Interp::new(&exact.classes, &exact.methods);
        let mut im = Interp::new(&manual.classes, &manual.methods);
        let (a, _) = ie.run(exact.entry, std::slice::from_ref(&rec)).unwrap();
        let (b, _) = im.run(manual.entry, std::slice::from_ref(&rec)).unwrap();
        let ga = a.elements().unwrap()[0].as_f64().unwrap();
        let gb = b.elements().unwrap()[0].as_f64().unwrap();
        assert!((ga - gb).abs() < 0.2, "{ga} vs {gb}");
    }

    #[test]
    fn exact_kernel_uses_exp_manual_does_not() {
        use s2fa_sjvm::Op;
        let has_exp = |s: &KernelSpec| {
            s.methods
                .get(s.entry)
                .code
                .iter()
                .any(|o| matches!(o, Op::Math(s2fa_sjvm::MathFn::Exp, _)))
        };
        assert!(has_exp(&spec()));
        assert!(!has_exp(&manual_spec()));
    }
}
