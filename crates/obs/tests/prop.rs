//! Property tests for the span layer: *any* interleaving of lane
//! operations — however unbalanced — must leave the recorded forest
//! well-formed, because every consumer (`aggregate_spans`,
//! `analyze_batch_loop`, the correlator) assumes [`verify_spans`] holds.
//! The same random programs drive the histogram-bound and JSON
//! round-trip checks.

use proptest::prelude::*;
use s2fa_obs::{verify_spans, Json, MetricsRegistry, Profiler};

const NAMES: [&str; 6] = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];

/// One encoded lane operation: `(op, a, b)` with the opcode taken mod 5.
type Op = (u8, u8, u8);

/// Runs a random program against one lane, mirroring the open stack so
/// `close` can target an arbitrary open span (not only the innermost).
fn run_program(lane: &mut s2fa_obs::Lane, ops: &[Op]) {
    let mut open: Vec<u64> = Vec::new();
    for &(op, a, b) in ops {
        match op % 5 {
            0 => open.push(lane.open(NAMES[a as usize % NAMES.len()])),
            1 => {
                if !open.is_empty() {
                    let at = a as usize % open.len();
                    let id = open[at];
                    // closing a non-innermost span closes its descendants
                    lane.close(id);
                    open.truncate(at);
                }
            }
            2 => {
                let end = lane.now_ns();
                let start = end.saturating_sub(u64::from(b));
                lane.record(NAMES[a as usize % NAMES.len()], start, end);
            }
            3 => lane.flush(),
            _ => {
                lane.in_span(NAMES[a as usize % NAMES.len()], |inner| {
                    let end = inner.now_ns();
                    inner.record(NAMES[b as usize % NAMES.len()], end, end);
                });
            }
        }
    }
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Whatever a single thread does to its lane — unbalanced opens,
    // out-of-order closes, synthetic records, mid-stream flushes — the
    // final forest passes every well-formedness check.
    #[test]
    fn random_programs_keep_the_forest_well_formed(ops in arb_ops()) {
        let profiler = Profiler::enabled();
        let mut lane = profiler.lane();
        run_program(&mut lane, &ops);
        drop(lane); // closes leftovers, flushes
        let spans = profiler.take_spans();
        if let Err(e) = verify_spans(&spans) {
            panic!("ill-formed forest: {e}");
        }
    }

    // Concurrent lanes never entangle: three threads running independent
    // random programs on the same profiler still yield one well-formed
    // forest, and parenting never crosses a lane boundary (verify_spans
    // checks that invariant for every record).
    #[test]
    fn concurrent_lanes_stay_well_formed(
        a in arb_ops(),
        b in arb_ops(),
        c in arb_ops(),
    ) {
        let profiler = Profiler::enabled();
        std::thread::scope(|scope| {
            for ops in [&a, &b, &c] {
                let profiler = &profiler;
                scope.spawn(move || {
                    let mut lane = profiler.lane();
                    run_program(&mut lane, ops);
                });
            }
        });
        let spans = profiler.take_spans();
        if let Err(e) = verify_spans(&spans) {
            panic!("ill-formed forest: {e}");
        }
    }

    // The metrics-only and disabled profilers record nothing, whatever
    // the program does.
    #[test]
    fn inert_lanes_record_nothing(ops in arb_ops()) {
        for profiler in [Profiler::metrics_only(), Profiler::disabled()] {
            let mut lane = profiler.lane();
            run_program(&mut lane, &ops);
            drop(lane);
            prop_assert_eq!(profiler.take_spans().len(), 0);
        }
    }

    // Log-linear histogram bounds: count and sum are exact, max is
    // exact, quantiles are monotone and within the bucket scheme's
    // relative-error envelope of the observed range.
    #[test]
    fn histogram_quantiles_stay_in_bounds(
        values in prop::collection::vec(0u64..4_000_000_000, 1..200),
    ) {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("prop");
        for &v in &values {
            h.record(v);
        }
        let snap = registry.snapshot().histograms["prop"];
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.max, max);
        prop_assert!(snap.p50 <= snap.p90 && snap.p90 <= snap.p99);
        prop_assert!(snap.p99 <= snap.max);
        // bucket midpoints sit within ~1/16 relative error below the
        // smallest observed value
        let floor = (min as f64 * 0.9) as u64;
        prop_assert!(snap.p50 >= floor, "p50 {} below floor {}", snap.p50, floor);
    }

    // The crate's JSON writer and parser are inverses on arbitrary
    // nested documents built from awkward scalars.
    #[test]
    fn json_roundtrips(
        n in any::<i32>(),
        f in -1.0e12f64..1.0e12,
        s in prop::sample::select(vec![
            "plain",
            "with \"quotes\" and \\backslash",
            "newline\nand\ttab",
            "unicode π ≤ 🦀",
            "",
        ]),
        flag in any::<bool>(),
    ) {
        let doc = Json::obj([
            ("int", Json::int(u64::from(n.unsigned_abs()))),
            ("float", Json::Num(f)),
            ("string", Json::str(s)),
            ("flag", Json::Bool(flag)),
            (
                "nested",
                Json::obj([
                    ("list", Json::Arr(vec![Json::Null, Json::str(s), Json::Num(f)])),
                ]),
            ),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).expect("rendered JSON parses");
        prop_assert_eq!(back, doc);
    }
}
