//! Lock-free metrics: named counters, gauges, and log-linear histograms.
//!
//! All recording paths are single atomic operations (`Relaxed`); no
//! mutex is ever taken while recording, so instrumenting the threaded
//! evaluator adds no contention points. Registration (name → handle
//! lookup) takes a lock, so hot paths should resolve their handles once
//! and reuse them.
//!
//! Histograms use a log-linear bucket layout (16 linear sub-buckets per
//! power of two, exact below 16) — the same shape HdrHistogram and
//! tokio's metrics use — giving ≤ ~6% relative quantile error over the
//! full `u64` range with a fixed 976-bucket table.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (last write wins).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta`.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Exact buckets for values below `LINEAR_MAX` (one per value).
const LINEAR_MAX: u64 = 16;
/// Linear sub-buckets per power-of-two decade.
const SUBBUCKETS: u32 = 16;
/// 16 exact + 60 decades (exp 4..=63) × 16 sub-buckets.
const BUCKETS: usize = 16 + 60 * SUBBUCKETS as usize;

fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= 4
    let sub = ((v >> (exp - 4)) & 0xf) as usize;
    16 + (exp as usize - 4) * SUBBUCKETS as usize + sub
}

/// Representative value for a bucket: the midpoint of its range, so
/// quantile estimates are unbiased within the ~6% bucket width.
fn bucket_value(idx: usize) -> u64 {
    if idx < LINEAR_MAX as usize {
        return idx as u64;
    }
    let decade = (idx - 16) / SUBBUCKETS as usize;
    let sub = ((idx - 16) % SUBBUCKETS as usize) as u64;
    let exp = decade as u32 + 4;
    let lo = (1u64 << exp) + (sub << (exp - 4));
    let width = 1u64 << (exp - 4);
    lo + width / 2
}

/// A log-linear histogram of `u64` samples (typically nanoseconds).
///
/// Recording is one atomic add plus an atomic max; snapshots are taken
/// without stopping writers (buckets are read `Relaxed`, so a snapshot
/// concurrent with writes is approximate — fine for reporting).
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time summary of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let sum = self.sum.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (idx, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_value(idx).min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            sum,
            max,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("p50", &s.p50)
            .field("p99", &s.p99)
            .field("max", &s.max)
            .finish()
    }
}

/// A point-in-time histogram summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample (exact, not bucketed).
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A registry of named metrics.
///
/// Handles are `Arc`s: resolve once (lock), record forever (lock-free).
/// Names are reused — registering the same name twice returns the same
/// instrument, so independent pipeline stages can share e.g. one
/// `eval_ns` histogram without coordination.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.counters.lock();
        m.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.gauges.lock();
        m.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.histograms.lock();
        m.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Snapshots every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time dump of a whole registry (name-sorted).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut values: Vec<u64> = Vec::new();
        for exp in 0..64u32 {
            for off in [0u64, 1, 7] {
                values.push((1u64 << exp).saturating_add(off << exp.saturating_sub(5)));
            }
        }
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "v={v} idx={idx}");
            assert!(idx >= last, "v={v}: index went backwards");
            last = idx;
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_value_lands_in_its_own_bucket() {
        for v in [0u64, 1, 15, 16, 17, 100, 1_000, 65_535, 1 << 30, 1 << 50] {
            let idx = bucket_index(v);
            let rep = bucket_value(idx);
            assert_eq!(
                bucket_index(rep),
                idx,
                "representative {rep} of bucket {idx} (for {v}) strayed"
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in [3u64, 3, 3, 7] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 16);
        assert_eq!(s.max, 7);
        assert_eq!(s.p50, 3);
        assert_eq!(s.p99, 7);
    }

    #[test]
    fn quantiles_are_within_bucket_error() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.max, 10_000);
        // Log-linear buckets: ≤ 1/16 relative width, so ~7% tolerance.
        let close = |got: u64, want: u64| {
            let err = (got as f64 - want as f64).abs() / want as f64;
            assert!(err < 0.07, "got {got}, want ~{want} (err {err:.3})");
        };
        close(s.p50, 5_000);
        close(s.p90, 9_000);
        close(s.p99, 9_900);
    }

    #[test]
    fn empty_histogram_snapshots_to_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(
            s,
            HistogramSnapshot {
                count: 0,
                sum: 0,
                max: 0,
                p50: 0,
                p90: 0,
                p99: 0
            }
        );
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn registry_reuses_instruments_by_name() {
        let r = MetricsRegistry::new();
        let a = r.counter("evals");
        let b = r.counter("evals");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("evals").get(), 3);
        r.gauge("inflight").set(5);
        r.histogram("lat").record(42);
        let snap = r.snapshot();
        assert_eq!(snap.counters["evals"], 3);
        assert_eq!(snap.gauges["inflight"], 5);
        assert_eq!(snap.histograms["lat"].count, 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let r = Arc::new(MetricsRegistry::new());
        let h = r.histogram("x");
        let c = r.counter("n");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let h = h.clone();
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        h.record(i);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8_000);
        assert_eq!(h.snapshot().count, 8_000);
    }
}
