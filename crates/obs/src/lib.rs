#![warn(missing_docs)]

//! # s2fa-obs — host-side profiling and metrics
//!
//! The repo's PR 3 trace layer answers "what did the search decide, and
//! at which *virtual* minute" — it is deterministic by design and knows
//! nothing about real time. This crate answers the complementary
//! question the ROADMAP's top open item (the 0.71× eight-thread
//! regression) demands: **where does the host wall-clock go?**
//!
//! Three instruments, three disciplines:
//!
//! * [`Profiler`] / [`Lane`] — hierarchical **spans** over the pipeline
//!   stages (codegen → lint → space identification → partitioning →
//!   tuning → merge) and over every evaluator worker thread. Monotonic
//!   clocks only; spans carry parent ids so nesting reconstructs a call
//!   tree ([`verify_spans`] checks well-formedness, the property tests
//!   enforce it). Lanes are per-thread with implicit parenting, so
//!   cross-thread parenting is impossible *by construction*, and
//!   completed spans buffer thread-locally — one lock per lane
//!   lifetime, not per span.
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s and
//!   log-linear [`Histogram`]s (p50/p90/p99/max) for the hot paths:
//!   per-eval latency, batch fan-out/join, cache probe and lock-wait,
//!   bandit pulls. Recording is a single relaxed atomic op — the
//!   threaded path gains no contention points.
//! * [`CorrelatorSink`] — the dual-clock join: wraps any `TraceSink`,
//!   shadow-records the host instant of every virtual-minute event, and
//!   [`correlate`] answers "virtual minute M was produced during host
//!   span S".
//!
//! ## Zero cost when disabled
//!
//! Everything hangs off a [`Profiler`] handle whose disabled form (the
//! default everywhere) is a `None`: no clock reads, no allocation, one
//! branch per instrumentation point. The determinism tests in `s2fa-dse`
//! pin profiling-enabled ≡ profiling-disabled DSE outcomes bit-for-bit,
//! and the throughput bench bounds the disabled-path overhead.
//!
//! [`report`] turns a recorded session into the shipped artifacts: the
//! aggregated span tree, the per-thread-count batch-loop attribution
//! (spawn/dispatch/estimate/collect/merge + honest idle), folded stacks
//! for flamegraphs, and the JSON profile `s2fa_cli profile` writes and
//! `s2fa_cli report` re-renders ([`json`] holds the crate's own parser;
//! [`schema`] the validator CI's `profile-smoke` job runs).

pub mod correlate;
pub mod json;
pub mod metrics;
pub mod report;
pub mod schema;
pub mod span;

pub use correlate::{correlate, CorrelatorSink, MinuteSample, SpanMinutes};
pub use json::Json;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use report::{aggregate_spans, analyze_batch_loop, BatchLoopProfile, Profile, SpanNode};
pub use schema::validate;
pub use span::{verify_spans, Lane, Profiler, SpanRecord};
