//! A minimal JSON value type with both a writer and a parser.
//!
//! The bench crate has a write-only `Json` for emitting results; the
//! report pipeline additionally needs to *read* profiles back
//! (`s2fa_cli report`, schema validation in CI), and the workspace is
//! offline — no serde. This is the smallest round-trip implementation
//! that covers the profile format: objects, arrays, strings with the
//! standard escapes, finite f64 numbers, bools, and null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys are sorted (BTreeMap) so rendering is
/// deterministic — goldens diff cleanly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value (exact for |v| < 2^53).
    pub fn int(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as u64 (truncating), if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    /// Member lookup: `j.get("spans")` on an object, else `None`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if *n == n.trunc() && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (must consume all non-whitespace input).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {}", *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut s = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs don't occur in our own output;
                        // map lone surrogates to the replacement char.
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance by whole UTF-8 chars, not bytes.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                s.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj([
            ("kernel", Json::str("S-W")),
            ("threads", Json::Arr(vec![Json::int(1), Json::int(8)])),
            ("ratio", Json::Num(0.7075)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "nested",
                Json::obj([("name", Json::str("spawn \"quoted\"\n"))]),
            ),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_hand_written_json() {
        let j = Json::parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ty"}}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            j.get("b").unwrap().get("c").unwrap().as_str().unwrap(),
            "x\ty"
        );
        assert_eq!(
            j.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-3.0)
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::int(42).render(), "42\n");
        assert_eq!(Json::Num(2.5).render(), "2.5\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
    }

    #[test]
    fn unicode_and_empty_containers() {
        let j = Json::parse(r#"{"s": "héllo é", "e": {}, "a": []}"#).unwrap();
        assert_eq!(j.get("s").unwrap().as_str().unwrap(), "héllo é");
        assert_eq!(j.get("e").unwrap(), &Json::Obj(BTreeMap::new()));
        assert_eq!(j.get("a").unwrap(), &Json::Arr(vec![]));
        // Renders and parses back.
        assert_eq!(Json::parse(&j.render()).unwrap(), j);
    }
}
