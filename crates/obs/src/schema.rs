//! A JSON-Schema-subset validator for the CI `profile-smoke` job.
//!
//! The schema for `PROFILE_<kernel>.json` is checked into
//! `docs/profile.schema.json`; CI validates freshly generated profiles
//! against it. We implement exactly the keywords that schema uses:
//! `type`, `required`, `properties`, `additionalProperties` (boolean),
//! `items`, `enum`, `const`, `minimum`, `minItems`. Unknown keywords
//! are ignored (as JSON Schema specifies).

use crate::json::Json;

/// Validates `value` against `schema`, returning every violation as a
/// `path: message` string (empty vec = valid).
pub fn validate(schema: &Json, value: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    check(schema, value, "$", &mut errors);
    errors
}

fn type_name(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "boolean",
        Json::Num(n) => {
            if *n == n.trunc() {
                "integer"
            } else {
                "number"
            }
        }
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

fn type_matches(want: &str, v: &Json) -> bool {
    match want {
        "number" => matches!(v, Json::Num(_)),
        "integer" => matches!(v, Json::Num(n) if *n == n.trunc()),
        other => type_name(v) == other,
    }
}

fn check(schema: &Json, value: &Json, path: &str, errors: &mut Vec<String>) {
    let Some(s) = schema.as_obj() else {
        return; // `true` / non-object schemas accept everything
    };

    if let Some(t) = s.get("type") {
        let allowed: Vec<&str> = match t {
            Json::Str(one) => vec![one.as_str()],
            Json::Arr(many) => many.iter().filter_map(|j| j.as_str()).collect(),
            _ => vec![],
        };
        if !allowed.iter().any(|want| type_matches(want, value)) {
            errors.push(format!(
                "{path}: expected type {}, got {}",
                allowed.join("|"),
                type_name(value)
            ));
            return; // structural keywords below assume the right type
        }
    }

    if let Some(c) = s.get("const") {
        if c != value {
            errors.push(format!("{path}: does not match const {}", compact(c)));
        }
    }

    if let Some(Json::Arr(options)) = s.get("enum") {
        if !options.contains(value) {
            errors.push(format!("{path}: not one of the enum values"));
        }
    }

    if let (Some(min), Some(n)) = (s.get("minimum").and_then(Json::as_f64), value.as_f64()) {
        if n < min {
            errors.push(format!("{path}: {n} is below minimum {min}"));
        }
    }

    if let Some(obj) = value.as_obj() {
        if let Some(Json::Arr(required)) = s.get("required") {
            for key in required.iter().filter_map(|j| j.as_str()) {
                if !obj.contains_key(key) {
                    errors.push(format!("{path}: missing required member `{key}`"));
                }
            }
        }
        let props = s.get("properties").and_then(Json::as_obj);
        if let Some(props) = props {
            for (key, sub) in props {
                if let Some(v) = obj.get(key) {
                    check(sub, v, &format!("{path}.{key}"), errors);
                }
            }
        }
        if s.get("additionalProperties") == Some(&Json::Bool(false)) {
            for key in obj.keys() {
                if props.is_none_or(|p| !p.contains_key(key)) {
                    errors.push(format!("{path}: unexpected member `{key}`"));
                }
            }
        }
    }

    if let Some(arr) = value.as_arr() {
        if let Some(min) = s.get("minItems").and_then(Json::as_u64) {
            if (arr.len() as u64) < min {
                errors.push(format!(
                    "{path}: {} items is below minItems {min}",
                    arr.len()
                ));
            }
        }
        if let Some(items) = s.get("items") {
            for (i, v) in arr.iter().enumerate() {
                check(items, v, &format!("{path}[{i}]"), errors);
            }
        }
    }
}

fn compact(j: &Json) -> String {
    j.render().trim_end().replace('\n', " ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Json {
        Json::parse(
            r#"{
              "type": "object",
              "required": ["kernel", "spans"],
              "additionalProperties": false,
              "properties": {
                "kernel": {"type": "string"},
                "version": {"const": 1},
                "mode": {"enum": ["full", "metrics"]},
                "spans": {
                  "type": "array",
                  "minItems": 1,
                  "items": {
                    "type": "object",
                    "required": ["name", "duration_ns"],
                    "properties": {
                      "name": {"type": "string"},
                      "duration_ns": {"type": "integer", "minimum": 0}
                    }
                  }
                }
              }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn accepts_a_conforming_document() {
        let doc = Json::parse(
            r#"{"kernel": "S-W", "version": 1, "mode": "full",
                "spans": [{"name": "dse", "duration_ns": 12}]}"#,
        )
        .unwrap();
        assert!(validate(&schema(), &doc).is_empty());
    }

    #[test]
    fn reports_each_violation_with_its_path() {
        let doc = Json::parse(
            r#"{"version": 2, "mode": "bogus", "extra": 0,
                "spans": [{"name": 5, "duration_ns": -1}]}"#,
        )
        .unwrap();
        let errs = validate(&schema(), &doc);
        let text = errs.join("\n");
        assert!(text.contains("missing required member `kernel`"), "{text}");
        assert!(text.contains("does not match const"), "{text}");
        assert!(text.contains("not one of the enum"), "{text}");
        assert!(text.contains("unexpected member `extra`"), "{text}");
        assert!(text.contains("$.spans[0].name"), "{text}");
        assert!(text.contains("below minimum"), "{text}");
    }

    #[test]
    fn wrong_type_short_circuits_structure_checks() {
        let doc = Json::parse(r#"{"kernel": "k", "spans": "oops"}"#).unwrap();
        let errs = validate(&schema(), &doc);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("$.spans: expected type array"));
    }

    #[test]
    fn integer_vs_number_distinction() {
        let s = Json::parse(r#"{"type": "integer"}"#).unwrap();
        assert!(validate(&s, &Json::Num(3.0)).is_empty());
        assert!(!validate(&s, &Json::Num(3.5)).is_empty());
        let n = Json::parse(r#"{"type": "number"}"#).unwrap();
        assert!(validate(&n, &Json::Num(3.5)).is_empty());
    }

    #[test]
    fn min_items_enforced() {
        let s = Json::parse(r#"{"type": "array", "minItems": 2}"#).unwrap();
        assert!(!validate(&s, &Json::Arr(vec![Json::Null])).is_empty());
        assert!(validate(&s, &Json::Arr(vec![Json::Null, Json::Null])).is_empty());
    }
}
