//! Hierarchical host-time spans.
//!
//! A [`Profiler`] is a cheap, cloneable handle to one profiling session.
//! Threads record through [`Lane`]s — per-thread recorders that keep an
//! explicit open-span stack, buffer completed spans locally, and flush
//! them into the shared session store in one lock acquisition when
//! dropped (or on [`Lane::flush`]). Parenting is *implicit*: a span's
//! parent is whatever span is open on the same lane, so cross-lane
//! parenting is impossible by construction — an invariant
//! [`verify_spans`] checks and the property tests exercise.
//!
//! All timestamps are nanoseconds on the host's **monotonic** clock
//! ([`std::time::Instant`]), relative to the profiler's epoch. Virtual
//! HLS minutes never appear here — joining the two time domains is the
//! correlator's job (see [`crate::correlate`]).
//!
//! ## Zero cost when disabled
//!
//! A disabled profiler ([`Profiler::disabled`], also the `Default`) has
//! no session store: every `Lane` operation is a branch on a `None` and
//! returns immediately, no clock is read, and nothing allocates. Hot
//! paths that want to skip even the timestamping arithmetic can branch
//! once on [`Lane::enabled`] / [`Profiler::is_enabled`] per batch.

use crate::metrics::MetricsRegistry;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One closed span: a named interval on one lane, with an optional
/// same-lane parent.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Session-unique id (never 0).
    pub id: u64,
    /// Enclosing span on the same lane, if any.
    pub parent: Option<u64>,
    /// Stage name (e.g. `"codegen"`, `"estimate"`).
    pub name: String,
    /// Logical thread lane the span was recorded on.
    pub lane: u32,
    /// Start, nanoseconds since the profiler epoch (monotonic clock).
    pub start_ns: u64,
    /// End, nanoseconds since the profiler epoch.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

#[derive(Debug)]
struct ProfInner {
    epoch: Instant,
    spans_enabled: bool,
    next_id: AtomicU64,
    next_lane: AtomicU32,
    spans: Mutex<Vec<SpanRecord>>,
    metrics: Arc<MetricsRegistry>,
}

/// A cheap, cloneable handle to one profiling session.
///
/// `Send + Sync`; clones share the session. The disabled profiler (the
/// default) records nothing and costs one branch per call.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<ProfInner>>,
}

impl Profiler {
    /// A session recording both spans and metrics.
    pub fn enabled() -> Profiler {
        Profiler::session(true)
    }

    /// A session recording metrics only: lanes are no-ops, but metric
    /// handles resolve and record. This is the cheap always-on mode the
    /// CLI's `--metrics` flag uses — atomic counters, no span buffers.
    pub fn metrics_only() -> Profiler {
        Profiler::session(false)
    }

    /// The no-op profiler (also the `Default`).
    pub fn disabled() -> Profiler {
        Profiler { inner: None }
    }

    fn session(spans_enabled: bool) -> Profiler {
        Profiler {
            inner: Some(Arc::new(ProfInner {
                epoch: Instant::now(),
                spans_enabled,
                next_id: AtomicU64::new(1),
                next_lane: AtomicU32::new(0),
                spans: Mutex::new(Vec::new()),
                metrics: Arc::new(MetricsRegistry::new()),
            })),
        }
    }

    /// Whether any recording (spans or metrics) is active.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether span recording is active (false for metrics-only).
    pub fn spans_enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.spans_enabled)
    }

    /// The session's metrics registry (`None` when disabled).
    pub fn metrics(&self) -> Option<&Arc<MetricsRegistry>> {
        self.inner.as_ref().map(|i| &i.metrics)
    }

    /// Nanoseconds since the session epoch on the monotonic clock
    /// (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(i) => i.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// A fresh recording lane for the calling thread.
    pub fn lane(&self) -> Lane {
        match &self.inner {
            Some(i) if i.spans_enabled => Lane {
                inner: Some(i.clone()),
                lane: i.next_lane.fetch_add(1, Ordering::Relaxed),
                open: Vec::new(),
                done: Vec::new(),
            },
            _ => Lane {
                inner: None,
                lane: 0,
                open: Vec::new(),
                done: Vec::new(),
            },
        }
    }

    /// Drains every span flushed so far, sorted by `(lane, start, id)`.
    ///
    /// Lanes still holding unflushed buffers are not included — drop or
    /// [`Lane::flush`] them first.
    pub fn take_spans(&self) -> Vec<SpanRecord> {
        let Some(i) = &self.inner else {
            return Vec::new();
        };
        let mut spans = std::mem::take(&mut *i.spans.lock());
        spans.sort_by(|a, b| {
            (a.lane, a.start_ns, a.id)
                .partial_cmp(&(b.lane, b.start_ns, b.id))
                .unwrap()
        });
        spans
    }
}

struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start_ns: u64,
}

/// A per-thread span recorder.
///
/// Owns its open-span stack and a local buffer of completed spans; the
/// buffer is flushed into the shared session store on drop (one lock
/// acquisition per lane lifetime in the common case). `Send` but not
/// shared — one lane per thread of interest.
pub struct Lane {
    inner: Option<Arc<ProfInner>>,
    lane: u32,
    open: Vec<OpenSpan>,
    done: Vec<SpanRecord>,
}

impl Lane {
    /// Whether this lane records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The lane index (0 for disabled lanes).
    pub fn lane_id(&self) -> u32 {
        self.lane
    }

    /// Nanoseconds since the session epoch (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(i) => i.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// Opens a span named `name` under the currently open span (if any)
    /// and returns its id (0 when disabled).
    pub fn open(&mut self, name: &'static str) -> u64 {
        let Some(i) = &self.inner else {
            return 0;
        };
        let id = i.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = self.open.last().map(|s| s.id);
        self.open.push(OpenSpan {
            id,
            parent,
            name,
            start_ns: i.epoch.elapsed().as_nanos() as u64,
        });
        id
    }

    /// Closes the span `id`, along with any descendants still open above
    /// it on the stack (all closed at the same instant — a span can never
    /// outlive its parent). Unknown or 0 ids are ignored.
    pub fn close(&mut self, id: u64) {
        let Some(i) = &self.inner else {
            return;
        };
        if !self.open.iter().any(|s| s.id == id) {
            return;
        }
        let now = i.epoch.elapsed().as_nanos() as u64;
        while let Some(s) = self.open.pop() {
            let last = s.id == id;
            self.done.push(SpanRecord {
                id: s.id,
                parent: s.parent,
                name: s.name.to_string(),
                lane: self.lane,
                start_ns: s.start_ns,
                end_ns: now,
            });
            if last {
                break;
            }
        }
    }

    /// Runs `f` inside a span named `name`.
    pub fn in_span<R>(&mut self, name: &'static str, f: impl FnOnce(&mut Lane) -> R) -> R {
        let id = self.open(name);
        let r = f(self);
        self.close(id);
        r
    }

    /// Records an explicitly-timed interval as a child of the currently
    /// open span. Used for intervals measured by accumulation (e.g. the
    /// per-worker `dispatch`/`estimate` totals of one batch) — the
    /// interval is duration-accurate; its placement is the caller's
    /// claim. The interval is clamped into the enclosing span's start.
    pub fn record(&mut self, name: &'static str, start_ns: u64, end_ns: u64) {
        let Some(i) = &self.inner else {
            return;
        };
        let id = i.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = self.open.last().map(|s| s.id);
        let floor = self.open.last().map(|s| s.start_ns).unwrap_or(0);
        let start_ns = start_ns.max(floor);
        self.done.push(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            lane: self.lane,
            start_ns,
            end_ns: end_ns.max(start_ns),
        });
    }

    /// Flushes the local buffer into the shared session store.
    pub fn flush(&mut self) {
        if let Some(i) = &self.inner {
            if !self.done.is_empty() {
                i.spans.lock().append(&mut self.done);
            }
        }
    }
}

impl Drop for Lane {
    fn drop(&mut self) {
        while let Some(s) = self.open.last() {
            let id = s.id;
            self.close(id);
        }
        self.flush();
    }
}

impl std::fmt::Debug for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lane")
            .field("lane", &self.lane)
            .field("enabled", &self.enabled())
            .field("open", &self.open.len())
            .field("buffered", &self.done.len())
            .finish()
    }
}

/// Checks the structural invariants of a span set:
///
/// * ids are unique and non-zero;
/// * `start_ns <= end_ns`;
/// * every parent id exists;
/// * parent and child share a lane (no cross-thread parenting);
/// * the parent opened before (or with) the child and closed after (or
///   with) it — nesting reconstructs a forest of proper call trees.
///
/// Returns the first violation found, as a human-readable message.
pub fn verify_spans(spans: &[SpanRecord]) -> Result<(), String> {
    use std::collections::HashMap;
    let mut by_id: HashMap<u64, &SpanRecord> = HashMap::with_capacity(spans.len());
    for s in spans {
        if s.id == 0 {
            return Err(format!("span `{}` has id 0", s.name));
        }
        if by_id.insert(s.id, s).is_some() {
            return Err(format!("duplicate span id {}", s.id));
        }
        if s.start_ns > s.end_ns {
            return Err(format!(
                "span `{}` ({}) ends before it starts: [{}, {}]",
                s.name, s.id, s.start_ns, s.end_ns
            ));
        }
    }
    for s in spans {
        let Some(pid) = s.parent else { continue };
        let Some(p) = by_id.get(&pid) else {
            return Err(format!(
                "span `{}` ({}) has unknown parent {}",
                s.name, s.id, pid
            ));
        };
        if p.lane != s.lane {
            return Err(format!(
                "cross-lane parenting: `{}` ({}) on lane {} has parent `{}` ({}) on lane {}",
                s.name, s.id, s.lane, p.name, p.id, p.lane
            ));
        }
        if p.start_ns > s.start_ns || s.end_ns > p.end_ns {
            return Err(format!(
                "span `{}` ({}) [{}, {}] escapes parent `{}` ({}) [{}, {}]",
                s.name, s.id, s.start_ns, s.end_ns, p.name, p.id, p.start_ns, p.end_ns
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::disabled();
        assert!(!p.is_enabled());
        assert_eq!(p.now_ns(), 0);
        let mut lane = p.lane();
        assert!(!lane.enabled());
        let id = lane.open("x");
        assert_eq!(id, 0);
        lane.close(id);
        drop(lane);
        assert!(p.take_spans().is_empty());
        assert!(p.metrics().is_none());
    }

    #[test]
    fn nesting_reconstructs_and_verifies() {
        let p = Profiler::enabled();
        let mut lane = p.lane();
        let a = lane.open("a");
        let b = lane.open("b");
        lane.close(b);
        let c = lane.open("c");
        lane.close(c);
        lane.close(a);
        drop(lane);
        let spans = p.take_spans();
        assert_eq!(spans.len(), 3);
        verify_spans(&spans).unwrap();
        let a_rec = spans.iter().find(|s| s.name == "a").unwrap();
        let b_rec = spans.iter().find(|s| s.name == "b").unwrap();
        let c_rec = spans.iter().find(|s| s.name == "c").unwrap();
        assert_eq!(b_rec.parent, Some(a_rec.id));
        assert_eq!(c_rec.parent, Some(a_rec.id));
        assert_eq!(a_rec.parent, None);
    }

    #[test]
    fn closing_a_parent_closes_open_children() {
        let p = Profiler::enabled();
        let mut lane = p.lane();
        let a = lane.open("a");
        let _b = lane.open("b");
        lane.close(a); // b still open — closed implicitly
        drop(lane);
        let spans = p.take_spans();
        assert_eq!(spans.len(), 2);
        verify_spans(&spans).unwrap();
    }

    #[test]
    fn dropping_a_lane_closes_and_flushes() {
        let p = Profiler::enabled();
        {
            let mut lane = p.lane();
            lane.open("left-open");
        }
        let spans = p.take_spans();
        assert_eq!(spans.len(), 1);
        verify_spans(&spans).unwrap();
    }

    #[test]
    fn lanes_are_distinct_across_threads() {
        let p = Profiler::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let p = p.clone();
                scope.spawn(move || {
                    let mut lane = p.lane();
                    lane.in_span("worker", |l| {
                        l.in_span("inner", |_| {});
                    });
                });
            }
        });
        let spans = p.take_spans();
        assert_eq!(spans.len(), 8);
        verify_spans(&spans).unwrap();
        let lanes: std::collections::HashSet<u32> = spans.iter().map(|s| s.lane).collect();
        assert_eq!(lanes.len(), 4, "each thread got its own lane");
    }

    #[test]
    fn explicit_records_nest_under_the_open_span() {
        let p = Profiler::enabled();
        let mut lane = p.lane();
        let w = lane.open("worker");
        let t0 = lane.now_ns();
        lane.record("dispatch", t0, t0 + 10);
        lane.record("estimate", t0 + 10, t0 + 50);
        lane.close(w);
        drop(lane);
        let spans = p.take_spans();
        verify_spans(&spans).unwrap();
        let d = spans.iter().find(|s| s.name == "dispatch").unwrap();
        assert_eq!(d.duration_ns(), 10);
        assert!(d.parent.is_some());
    }

    #[test]
    fn verify_catches_cross_lane_parenting() {
        let bad = vec![
            SpanRecord {
                id: 1,
                parent: None,
                name: "a".into(),
                lane: 0,
                start_ns: 0,
                end_ns: 100,
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "b".into(),
                lane: 1,
                start_ns: 10,
                end_ns: 20,
            },
        ];
        assert!(verify_spans(&bad).unwrap_err().contains("cross-lane"));
    }

    #[test]
    fn verify_catches_escaping_children() {
        let bad = vec![
            SpanRecord {
                id: 1,
                parent: None,
                name: "a".into(),
                lane: 0,
                start_ns: 0,
                end_ns: 100,
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "b".into(),
                lane: 0,
                start_ns: 10,
                end_ns: 120,
            },
        ];
        assert!(verify_spans(&bad).unwrap_err().contains("escapes"));
    }

    #[test]
    fn metrics_only_lanes_are_inert() {
        let p = Profiler::metrics_only();
        assert!(p.is_enabled());
        assert!(!p.spans_enabled());
        assert!(p.metrics().is_some());
        let mut lane = p.lane();
        assert!(!lane.enabled());
        lane.open("x");
        drop(lane);
        assert!(p.take_spans().is_empty());
    }
}
