//! Dual-clock correlation: joining virtual minutes to host spans.
//!
//! The pipeline runs on two clocks. Trace [`Event`]s are stamped with
//! *virtual* minutes — the simulated HLS wall-clock, deterministic given
//! the seed. Spans record *host* nanoseconds — real, OS-dependent time.
//! [`CorrelatorSink`] bridges them: it wraps any [`TraceSink`] and, for
//! each event that carries a virtual minute ([`Event::minute`]), also
//! notes the host instant the event was emitted at. [`correlate`] then
//! joins those samples against a span set, answering "virtual minute M
//! was produced during host span S" — the deepest span containing the
//! emission instant claims the event.

use crate::span::{Profiler, SpanRecord};
use parking_lot::Mutex;
use s2fa_trace::{Event, TraceSink};
use std::collections::BTreeMap;

/// One virtual-minute event observed at a host instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinuteSample {
    /// The event's virtual-minute stamp.
    pub minute: f64,
    /// Host nanoseconds (profiler epoch) when the event was emitted.
    pub host_ns: u64,
}

/// A [`TraceSink`] decorator that records `(virtual minute, host ns)`
/// pairs for every minute-carrying event, forwarding everything to the
/// wrapped sink unchanged.
///
/// The decorator never alters or drops events, so wrapping a sink in a
/// correlator cannot change what the flight record sees — only add the
/// host-side shadow record.
#[derive(Debug)]
pub struct CorrelatorSink<S: TraceSink> {
    inner: S,
    profiler: Profiler,
    samples: Mutex<Vec<MinuteSample>>,
}

impl<S: TraceSink> CorrelatorSink<S> {
    /// Wraps `inner`, timestamping on `profiler`'s epoch.
    pub fn new(inner: S, profiler: Profiler) -> Self {
        CorrelatorSink {
            inner,
            profiler,
            samples: Mutex::new(Vec::new()),
        }
    }

    /// The samples collected so far, in emission order.
    pub fn samples(&self) -> Vec<MinuteSample> {
        self.samples.lock().clone()
    }

    /// Unwraps the decorator, returning the inner sink and the samples.
    pub fn into_parts(self) -> (S, Vec<MinuteSample>) {
        (self.inner, self.samples.into_inner())
    }
}

impl<S: TraceSink> TraceSink for CorrelatorSink<S> {
    fn emit(&self, event: &Event) {
        if let Some(minute) = event.minute() {
            if self.profiler.is_enabled() {
                self.samples.lock().push(MinuteSample {
                    minute,
                    host_ns: self.profiler.now_ns(),
                });
            }
        }
        self.inner.emit(event);
    }

    fn flush(&self) {
        self.inner.flush();
    }

    fn emitted(&self) -> u64 {
        self.inner.emitted()
    }
}

/// The join of one span name's host interval with the virtual schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanMinutes {
    /// Span name (deepest span containing the emissions).
    pub span: String,
    /// Number of minute-carrying events attributed to the span.
    pub events: u64,
    /// Smallest virtual minute observed inside the span.
    pub first_minute: f64,
    /// Largest virtual minute observed inside the span.
    pub last_minute: f64,
}

/// Joins minute samples against a span set.
///
/// Each sample is claimed by the *deepest* (shortest-duration) span
/// whose `[start_ns, end_ns]` interval contains its host instant; ties
/// go to the later-starting span. Samples falling outside every span
/// are aggregated under the pseudo-span `"(unattributed)"`. Results are
/// grouped by span name, sorted by name.
pub fn correlate(samples: &[MinuteSample], spans: &[SpanRecord]) -> Vec<SpanMinutes> {
    let mut by_name: BTreeMap<&str, SpanMinutes> = BTreeMap::new();
    for sample in samples {
        let owner = spans
            .iter()
            .filter(|s| s.start_ns <= sample.host_ns && sample.host_ns <= s.end_ns)
            .min_by_key(|s| (s.duration_ns(), u64::MAX - s.start_ns))
            .map(|s| s.name.as_str())
            .unwrap_or("(unattributed)");
        let entry = by_name.entry(owner).or_insert_with(|| SpanMinutes {
            span: owner.to_string(),
            events: 0,
            first_minute: f64::INFINITY,
            last_minute: f64::NEG_INFINITY,
        });
        entry.events += 1;
        entry.first_minute = entry.first_minute.min(sample.minute);
        entry.last_minute = entry.last_minute.max(sample.minute);
    }
    by_name.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_trace::RingSink;

    fn span(id: u64, name: &str, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent: if id > 1 { Some(id - 1) } else { None },
            name: name.into(),
            lane: 0,
            start_ns: start,
            end_ns: end,
        }
    }

    #[test]
    fn correlator_forwards_and_samples() {
        let sink = CorrelatorSink::new(RingSink::new(16), Profiler::enabled());
        sink.emit(&Event::RunStart {
            kernel: "k".into(),
            budget_minutes: 1.0,
            partitions: 1,
        });
        sink.emit(&Event::RunStop {
            minute: 42.0,
            evaluations: 1,
            reason: "merged".into(),
        });
        assert_eq!(sink.emitted(), 2, "both events reach the inner sink");
        let samples = sink.samples();
        assert_eq!(samples.len(), 1, "only the minute-stamped event sampled");
        assert_eq!(samples[0].minute, 42.0);
    }

    #[test]
    fn disabled_profiler_collects_no_samples() {
        let sink = CorrelatorSink::new(RingSink::new(4), Profiler::disabled());
        sink.emit(&Event::RunStop {
            minute: 1.0,
            evaluations: 0,
            reason: "merged".into(),
        });
        assert!(sink.samples().is_empty());
        assert_eq!(sink.emitted(), 1);
    }

    #[test]
    fn deepest_containing_span_claims_the_sample() {
        let spans = vec![span(1, "dse", 0, 1_000), span(2, "merge", 600, 900)];
        let samples = vec![
            MinuteSample {
                minute: 3.0,
                host_ns: 700,
            },
            MinuteSample {
                minute: 5.0,
                host_ns: 100,
            },
            MinuteSample {
                minute: 9.0,
                host_ns: 2_000,
            },
        ];
        let joined = correlate(&samples, &spans);
        let get = |name: &str| joined.iter().find(|j| j.span == name).unwrap();
        assert_eq!(get("merge").events, 1);
        assert_eq!(get("merge").first_minute, 3.0);
        assert_eq!(get("dse").events, 1);
        assert_eq!(get("dse").first_minute, 5.0);
        assert_eq!(get("(unattributed)").events, 1);
    }

    #[test]
    fn minutes_aggregate_per_span_name() {
        let spans = vec![span(1, "merge", 0, 100)];
        let samples: Vec<MinuteSample> = (0..5)
            .map(|i| MinuteSample {
                minute: i as f64,
                host_ns: i * 10,
            })
            .collect();
        let joined = correlate(&samples, &spans);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].events, 5);
        assert_eq!(joined[0].first_minute, 0.0);
        assert_eq!(joined[0].last_minute, 4.0);
    }
}
