//! The flight-recorder report: aggregation, attribution, rendering.
//!
//! Raw [`SpanRecord`]s are a flat forest of timed intervals. This module
//! turns them into the artifacts `s2fa_cli profile` / `report` ship:
//!
//! * an **aggregated span tree** ([`aggregate_spans`]) — spans merged by
//!   name-path across lanes, with counts and total/self durations;
//! * a **batch-loop attribution** ([`analyze_batch_loop`]) — the
//!   pooled evaluator's wall-clock decomposed into the four named
//!   phases (`submit`/`estimate`/`wait`/`merge`) plus an honest `idle`
//!   residual, per thread count;
//! * a [`Profile`] bundling tree + metrics + dual-clock correlation +
//!   attribution, with a JSON round-trip (`results/PROFILE_<kernel>.json`),
//!   a text renderer, folded-stack (flamegraph) output, and a
//!   timing-free *structure* view for golden diffs in CI.

use crate::correlate::SpanMinutes;
use crate::json::Json;
use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use crate::span::SpanRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One node of the aggregated span tree: all spans sharing a name-path,
/// merged.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Number of span instances merged into this node.
    pub count: u64,
    /// Sum of instance durations.
    pub total_ns: u64,
    /// Children, merged by name, sorted by name.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Time in this node not covered by its children.
    pub fn self_ns(&self) -> u64 {
        let child: u64 = self.children.iter().map(|c| c.total_ns).sum();
        self.total_ns.saturating_sub(child)
    }
}

/// Merges a span forest into an aggregated tree.
///
/// Spans are grouped by *name-path*: two spans merge when their names
/// match and their parents (recursively) merged. Lanes disappear — a
/// pool of eight `worker` roots becomes one `worker` node with
/// `count == 8`. Roots and children are sorted by name, so the result
/// is deterministic regardless of thread scheduling.
pub fn aggregate_spans(spans: &[SpanRecord]) -> Vec<SpanNode> {
    let mut children_of: BTreeMap<Option<u64>, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans {
        children_of.entry(s.parent).or_default().push(s);
    }
    merge_level(children_of.get(&None).map_or(&[][..], |v| v), &children_of)
}

fn merge_level(
    level: &[&SpanRecord],
    children_of: &BTreeMap<Option<u64>, Vec<&SpanRecord>>,
) -> Vec<SpanNode> {
    let mut by_name: BTreeMap<&str, (u64, u64, Vec<&SpanRecord>)> = BTreeMap::new();
    for s in level {
        let entry = by_name.entry(&s.name).or_insert((0, 0, Vec::new()));
        entry.0 += 1;
        entry.1 += s.duration_ns();
        if let Some(kids) = children_of.get(&Some(s.id)) {
            entry.2.extend(kids.iter().copied());
        }
    }
    by_name
        .into_iter()
        .map(|(name, (count, total_ns, kids))| SpanNode {
            name: name.to_string(),
            count,
            total_ns,
            children: merge_level(&kids, children_of),
        })
        .collect()
}

/// The pooled batch loop's wall-clock, attributed to named phases at
/// one thread count.
///
/// `submit` and `merge` are measured directly on the calling lane. The
/// estimation window is concurrent: the caller helps execute chunks
/// under its own `estimate` span while pool workers burn through
/// `pool_chunk` spans on their own lanes, so `estimate_ns` is the
/// combined busy time mapped to wall-clock proportionally
/// (`(caller estimate + Σ pool_chunk) / threads` — during the window
/// every wall nanosecond has `threads` executors of capacity). When no
/// worker chunk landed inside the batch (a one-core host, or a batch
/// the caller drained alone), the caller's `estimate` span *is* the
/// wall story and counts 1:1. `wait_ns` is the caller's blocking join
/// minus the portion where workers were still busy (that time is
/// already attributed through the chunk shares). What no phase claims
/// is `idle_ns` — the report never silently inflates a named phase to
/// make the numbers add up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchLoopProfile {
    /// Thread count the batches ran at.
    pub threads: u64,
    /// Batches aggregated.
    pub batches: u64,
    /// Total wall time inside `batch` spans.
    pub wall_ns: u64,
    /// Job hand-off to the persistent pool (chunk math + enqueue).
    pub submit_ns: u64,
    /// Estimation: caller + worker chunk time, wall-proportional share.
    pub estimate_ns: u64,
    /// Caller blocking on stragglers beyond the worker-busy window.
    pub wait_ns: u64,
    /// Writeback of results into input order.
    pub merge_ns: u64,
    /// Wall time no named phase claims.
    pub idle_ns: u64,
}

impl BatchLoopProfile {
    /// Sum of the named phases.
    pub fn attributed_ns(&self) -> u64 {
        self.submit_ns + self.estimate_ns + self.wait_ns + self.merge_ns
    }

    /// Fraction of batch wall-time the named phases explain (capped at
    /// 1.0; 0 when no batches were seen).
    pub fn attributed_fraction(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        (self.attributed_ns() as f64 / self.wall_ns as f64).min(1.0)
    }
}

/// Attributes batch-loop wall-time from one profiling session's spans.
///
/// Expects the span shape `ThreadedObjective` records: `batch` spans on
/// the calling lane with `submit`/`estimate`/`wait`/`merge` children
/// (pooled) or a lone `estimate` child (serial), and `pool_chunk` root
/// spans on their own per-chunk lanes, associated to their batch by
/// time containment (batches within one session run serially, so
/// containment is unambiguous).
pub fn analyze_batch_loop(spans: &[SpanRecord], threads: u64) -> BatchLoopProfile {
    let child = |parent: &SpanRecord, name: &str| -> Option<&SpanRecord> {
        spans
            .iter()
            .find(|s| s.parent == Some(parent.id) && s.name == name)
    };
    let mut p = BatchLoopProfile {
        threads,
        batches: 0,
        wall_ns: 0,
        submit_ns: 0,
        estimate_ns: 0,
        wait_ns: 0,
        merge_ns: 0,
        idle_ns: 0,
    };
    for batch in spans.iter().filter(|s| s.name == "batch") {
        p.batches += 1;
        p.wall_ns += batch.duration_ns();
        let before = p.attributed_ns();
        if let Some(submit) = child(batch, "submit") {
            // Pooled path. Worker chunks inside this batch's window.
            let chunks: Vec<&SpanRecord> = spans
                .iter()
                .filter(|s| {
                    s.name == "pool_chunk"
                        && s.parent.is_none()
                        && s.lane != batch.lane
                        && s.start_ns >= batch.start_ns
                        && s.end_ns <= batch.end_ns
                })
                .collect();
            let chunk_time: u64 = chunks.iter().map(|s| s.duration_ns()).sum();
            p.submit_ns += submit.duration_ns();
            if let Some(est) = child(batch, "estimate") {
                if chunk_time == 0 {
                    // No worker claimed a chunk (one executor, or the
                    // caller drained the job alone): the caller's
                    // estimate span is the whole wall story.
                    p.estimate_ns += est.duration_ns();
                } else {
                    p.estimate_ns += (est.duration_ns() + chunk_time) / threads.max(1);
                }
            }
            if let Some(wait) = child(batch, "wait") {
                // Subtract the sub-window where workers were still
                // busy — that time is attributed via the chunk shares,
                // and counting the caller's full block as well would
                // double-book it.
                let busy = chunks.iter().map(|s| s.end_ns).max().map_or(0, |last_end| {
                    last_end
                        .min(wait.end_ns)
                        .saturating_sub(wait.start_ns.max(batch.start_ns))
                });
                p.wait_ns += wait.duration_ns().saturating_sub(busy);
            }
            if let Some(merge) = child(batch, "merge") {
                p.merge_ns += merge.duration_ns();
            }
        } else if let Some(est) = child(batch, "estimate") {
            // Serial path: one estimate span covers the whole map.
            p.estimate_ns += est.duration_ns();
        }
        let attributed = p.attributed_ns() - before;
        p.idle_ns += batch.duration_ns().saturating_sub(attributed);
    }
    p
}

/// A complete flight-recorder profile — what `PROFILE_<kernel>.json`
/// holds.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Profile {
    /// Kernel the profiled run compiled.
    pub kernel: String,
    /// `"full"` (spans + metrics) or `"metrics"` (registry only).
    pub mode: String,
    /// Aggregated span tree of the pipeline run.
    pub tree: Vec<SpanNode>,
    /// Metrics registry snapshot.
    pub metrics: MetricsSnapshot,
    /// Dual-clock join of virtual minutes to host spans.
    pub correlation: Vec<SpanMinutes>,
    /// Batch-loop attribution, one entry per swept thread count.
    pub batch_loop: Vec<BatchLoopProfile>,
}

impl Profile {
    /// Serializes the profile (schema: `docs/profile.schema.json`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("version", Json::int(1)),
            ("kernel", Json::str(&self.kernel)),
            ("mode", Json::str(&self.mode)),
            (
                "span_tree",
                Json::Arr(self.tree.iter().map(node_to_json).collect()),
            ),
            ("metrics", metrics_to_json(&self.metrics)),
            (
                "correlation",
                Json::Arr(
                    self.correlation
                        .iter()
                        .map(|c| {
                            Json::obj([
                                ("span", Json::str(&c.span)),
                                ("events", Json::int(c.events)),
                                ("first_minute", Json::Num(c.first_minute)),
                                ("last_minute", Json::Num(c.last_minute)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "batch_loop",
                Json::Arr(
                    self.batch_loop
                        .iter()
                        .map(|b| {
                            Json::obj([
                                ("threads", Json::int(b.threads)),
                                ("batches", Json::int(b.batches)),
                                ("wall_ns", Json::int(b.wall_ns)),
                                ("submit_ns", Json::int(b.submit_ns)),
                                ("estimate_ns", Json::int(b.estimate_ns)),
                                ("wait_ns", Json::int(b.wait_ns)),
                                ("merge_ns", Json::int(b.merge_ns)),
                                ("idle_ns", Json::int(b.idle_ns)),
                                ("attributed_fraction", Json::Num(b.attributed_fraction())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserializes a profile written by [`Profile::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or ill-typed member.
    pub fn from_json(j: &Json) -> Result<Profile, String> {
        let str_of = |j: &Json, key: &str| -> Result<String, String> {
            j.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string `{key}`"))
        };
        let int_of = |j: &Json, key: &str| -> Result<u64, String> {
            j.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing integer `{key}`"))
        };
        let num_of = |j: &Json, key: &str| -> Result<f64, String> {
            j.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing number `{key}`"))
        };
        let arr_of = |j: &Json, key: &str| -> Result<Vec<Json>, String> {
            j.get(key)
                .and_then(Json::as_arr)
                .map(<[Json]>::to_vec)
                .ok_or_else(|| format!("missing array `{key}`"))
        };
        let mut correlation = Vec::new();
        for c in arr_of(j, "correlation")? {
            correlation.push(SpanMinutes {
                span: str_of(&c, "span")?,
                events: int_of(&c, "events")?,
                first_minute: num_of(&c, "first_minute")?,
                last_minute: num_of(&c, "last_minute")?,
            });
        }
        let mut batch_loop = Vec::new();
        for b in arr_of(j, "batch_loop")? {
            batch_loop.push(BatchLoopProfile {
                threads: int_of(&b, "threads")?,
                batches: int_of(&b, "batches")?,
                wall_ns: int_of(&b, "wall_ns")?,
                submit_ns: int_of(&b, "submit_ns")?,
                estimate_ns: int_of(&b, "estimate_ns")?,
                wait_ns: int_of(&b, "wait_ns")?,
                merge_ns: int_of(&b, "merge_ns")?,
                idle_ns: int_of(&b, "idle_ns")?,
            });
        }
        Ok(Profile {
            kernel: str_of(j, "kernel")?,
            mode: str_of(j, "mode")?,
            tree: arr_of(j, "span_tree")?
                .iter()
                .map(node_from_json)
                .collect::<Result<_, _>>()?,
            metrics: metrics_from_json(j.get("metrics").ok_or("missing object `metrics`")?)?,
            correlation,
            batch_loop,
        })
    }

    /// Renders the profile as a human-readable flight-recorder report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "flight record: {} ({})", self.kernel, self.mode);
        if !self.tree.is_empty() {
            let _ = writeln!(out, "\nspan tree (host wall-time):");
            for node in &self.tree {
                render_node(&mut out, node, 0);
            }
        }
        if !self.batch_loop.is_empty() {
            let _ = writeln!(out, "\nbatch-loop attribution (per thread count):");
            let _ = writeln!(
                out,
                "  {:>7} {:>8} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>6}",
                "threads",
                "batches",
                "wall_ms",
                "submit%",
                "est%",
                "wait%",
                "merge%",
                "idle%",
                "attr%"
            );
            for b in &self.batch_loop {
                let pct = |ns: u64| {
                    if b.wall_ns == 0 {
                        0.0
                    } else {
                        100.0 * ns as f64 / b.wall_ns as f64
                    }
                };
                let _ = writeln!(
                    out,
                    "  {:>7} {:>8} {:>10.2} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>5.1}%",
                    b.threads,
                    b.batches,
                    b.wall_ns as f64 / 1e6,
                    pct(b.submit_ns),
                    pct(b.estimate_ns),
                    pct(b.wait_ns),
                    pct(b.merge_ns),
                    pct(b.idle_ns),
                    100.0 * b.attributed_fraction(),
                );
            }
        }
        if !self.correlation.is_empty() {
            let _ = writeln!(out, "\ndual-clock join (virtual minutes per host span):");
            for c in &self.correlation {
                let _ = writeln!(
                    out,
                    "  {:<24} {:>6} events   minutes {:.2} .. {:.2}",
                    c.span, c.events, c.first_minute, c.last_minute
                );
            }
        }
        if !self.metrics.histograms.is_empty() {
            let _ = writeln!(out, "\nlatency histograms (ns):");
            for (name, h) in &self.metrics.histograms {
                let _ = writeln!(
                    out,
                    "  {:<24} n={:<8} p50={:<8} p90={:<8} p99={:<8} max={}",
                    name, h.count, h.p50, h.p90, h.p99, h.max
                );
            }
        }
        if !self.metrics.counters.is_empty() {
            let _ = writeln!(out, "\ncounters:");
            for (name, v) in &self.metrics.counters {
                let _ = writeln!(out, "  {name:<24} {v}");
            }
        }
        if !self.metrics.gauges.is_empty() {
            let _ = writeln!(out, "\ngauges:");
            for (name, v) in &self.metrics.gauges {
                let _ = writeln!(out, "  {name:<24} {v}");
            }
        }
        out
    }

    /// Folded-stack output (`a;b;c <self_ns>` per line), consumable by
    /// standard flamegraph tooling.
    pub fn folded(&self) -> String {
        let mut lines = Vec::new();
        for node in &self.tree {
            fold_node(&mut lines, node, "");
        }
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// The timing-free structure of the profile: every span name-path,
    /// sorted. CI diffs this against a committed golden, so reordered
    /// scheduling or timing jitter never breaks the build — only a real
    /// shape change (a stage appearing, disappearing, or moving) does.
    pub fn structure(&self) -> Json {
        // Spans whose *presence* depends on host scheduling rather than
        // pipeline shape are excluded: a `pool_chunk` span exists only
        // when a pool worker wins a chunk claim against the submitting
        // thread, which a 1-core host never shows and a 16-core host
        // always does. The golden must diff clean on both.
        const SCHEDULING_DEPENDENT: &[&str] = &["pool_chunk"];
        let mut paths = Vec::new();
        for node in &self.tree {
            structure_paths(&mut paths, node, "");
        }
        paths.retain(|p| !p.split('/').any(|seg| SCHEDULING_DEPENDENT.contains(&seg)));
        paths.sort();
        paths.dedup();
        Json::obj([
            ("kernel", Json::str(&self.kernel)),
            (
                "span_paths",
                Json::Arr(paths.into_iter().map(Json::Str).collect()),
            ),
        ])
    }
}

fn render_node(out: &mut String, node: &SpanNode, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    let _ = writeln!(
        out,
        "- {:<24} total {:>10.3} ms   self {:>10.3} ms   n={}",
        node.name,
        node.total_ns as f64 / 1e6,
        node.self_ns() as f64 / 1e6,
        node.count
    );
    for child in &node.children {
        render_node(out, child, depth + 1);
    }
}

fn fold_node(lines: &mut Vec<String>, node: &SpanNode, prefix: &str) {
    let path = if prefix.is_empty() {
        node.name.clone()
    } else {
        format!("{prefix};{}", node.name)
    };
    lines.push(format!("{path} {}", node.self_ns()));
    for child in &node.children {
        fold_node(lines, child, &path);
    }
}

fn structure_paths(paths: &mut Vec<String>, node: &SpanNode, prefix: &str) {
    let path = if prefix.is_empty() {
        node.name.clone()
    } else {
        format!("{prefix}/{}", node.name)
    };
    paths.push(path.clone());
    for child in &node.children {
        structure_paths(paths, child, &path);
    }
}

fn node_to_json(node: &SpanNode) -> Json {
    Json::obj([
        ("name", Json::str(&node.name)),
        ("count", Json::int(node.count)),
        ("total_ns", Json::int(node.total_ns)),
        ("self_ns", Json::int(node.self_ns())),
        (
            "children",
            Json::Arr(node.children.iter().map(node_to_json).collect()),
        ),
    ])
}

fn node_from_json(j: &Json) -> Result<SpanNode, String> {
    Ok(SpanNode {
        name: j
            .get("name")
            .and_then(Json::as_str)
            .ok_or("span node missing `name`")?
            .to_string(),
        count: j
            .get("count")
            .and_then(Json::as_u64)
            .ok_or("span node missing `count`")?,
        total_ns: j
            .get("total_ns")
            .and_then(Json::as_u64)
            .ok_or("span node missing `total_ns`")?,
        children: j
            .get("children")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .map(node_from_json)
            .collect::<Result<_, _>>()?,
    })
}

fn metrics_to_json(m: &MetricsSnapshot) -> Json {
    Json::obj([
        (
            "counters",
            Json::Obj(
                m.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::int(*v)))
                    .collect(),
            ),
        ),
        (
            "gauges",
            Json::Obj(
                m.gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                    .collect(),
            ),
        ),
        (
            "histograms",
            Json::Obj(
                m.histograms
                    .iter()
                    .map(|(k, h)| {
                        (
                            k.clone(),
                            Json::obj([
                                ("count", Json::int(h.count)),
                                ("sum", Json::int(h.sum)),
                                ("max", Json::int(h.max)),
                                ("p50", Json::int(h.p50)),
                                ("p90", Json::int(h.p90)),
                                ("p99", Json::int(h.p99)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

fn metrics_from_json(j: &Json) -> Result<MetricsSnapshot, String> {
    let mut snap = MetricsSnapshot::default();
    if let Some(counters) = j.get("counters").and_then(Json::as_obj) {
        for (k, v) in counters {
            snap.counters
                .insert(k.clone(), v.as_u64().ok_or("counter not a number")?);
        }
    }
    if let Some(gauges) = j.get("gauges").and_then(Json::as_obj) {
        for (k, v) in gauges {
            snap.gauges
                .insert(k.clone(), v.as_f64().ok_or("gauge not a number")? as i64);
        }
    }
    if let Some(hists) = j.get("histograms").and_then(Json::as_obj) {
        for (k, h) in hists {
            let field = |name: &str| {
                h.get(name)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("histogram `{k}` missing `{name}`"))
            };
            snap.histograms.insert(
                k.clone(),
                HistogramSnapshot {
                    count: field("count")?,
                    sum: field("sum")?,
                    max: field("max")?,
                    p50: field("p50")?,
                    p90: field("p90")?,
                    p99: field("p99")?,
                },
            );
        }
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        id: u64,
        parent: Option<u64>,
        name: &str,
        lane: u32,
        start: u64,
        end: u64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.into(),
            lane,
            start_ns: start,
            end_ns: end,
        }
    }

    /// A synthetic pooled batch at 3 executors: submit 0-10, the caller
    /// helps under `estimate` 10-90, blocks in `wait` to 110, merges to
    /// 120; two worker chunks overlap the window on their own lanes.
    fn threaded_batch() -> Vec<SpanRecord> {
        vec![
            rec(1, None, "batch", 0, 0, 120),
            rec(2, Some(1), "submit", 0, 0, 10),
            rec(3, Some(1), "estimate", 0, 10, 90),
            rec(4, Some(1), "wait", 0, 90, 110),
            rec(5, Some(1), "merge", 0, 110, 120),
            // worker chunks, one fresh lane each
            rec(6, None, "pool_chunk", 1, 12, 100),
            rec(7, None, "pool_chunk", 2, 15, 105),
        ]
    }

    #[test]
    fn aggregation_merges_by_name_path() {
        let tree = aggregate_spans(&threaded_batch());
        assert_eq!(tree.len(), 2, "batch + pool_chunk roots");
        let batch = tree.iter().find(|n| n.name == "batch").unwrap();
        let chunk = tree.iter().find(|n| n.name == "pool_chunk").unwrap();
        assert_eq!(batch.count, 1);
        assert_eq!(chunk.count, 2, "two lanes merged into one node");
        assert_eq!(chunk.total_ns, 88 + 90);
        // children sorted by name
        let names: Vec<&str> = batch.children.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, ["estimate", "merge", "submit", "wait"]);
    }

    #[test]
    fn batch_loop_attribution_tiles_the_wall() {
        let p = analyze_batch_loop(&threaded_batch(), 3);
        assert_eq!(p.batches, 1);
        assert_eq!(p.wall_ns, 120);
        assert_eq!(p.submit_ns, 10);
        // caller estimate (80) + chunk time (88 + 90), ÷ 3 executors
        assert_eq!(p.estimate_ns, (80 + 88 + 90) / 3);
        // wait 90-110 minus the worker-busy part 90-105
        assert_eq!(p.wait_ns, 5);
        assert_eq!(p.merge_ns, 10);
        assert!(
            p.attributed_fraction() > 0.9,
            "fraction {}",
            p.attributed_fraction()
        );
        assert_eq!(
            p.wall_ns,
            p.attributed_ns() + p.idle_ns,
            "idle is the exact residual"
        );
    }

    #[test]
    fn serial_batches_attribute_to_estimate() {
        let spans = vec![
            rec(1, None, "batch", 0, 0, 100),
            rec(2, Some(1), "estimate", 0, 2, 99),
        ];
        let p = analyze_batch_loop(&spans, 1);
        assert_eq!(p.estimate_ns, 97);
        assert_eq!(p.submit_ns, 0);
        assert_eq!(p.idle_ns, 3);
        assert!(p.attributed_fraction() > 0.95);
    }

    #[test]
    fn pooled_batch_without_worker_chunks_counts_caller_estimate_fully() {
        // One-core host (or the caller drained every chunk): no
        // pool_chunk spans land, so the caller's estimate is 1:1 and
        // nothing is divided away.
        let spans = vec![
            rec(1, None, "batch", 0, 0, 100),
            rec(2, Some(1), "submit", 0, 0, 5),
            rec(3, Some(1), "estimate", 0, 5, 90),
            rec(4, Some(1), "wait", 0, 90, 92),
            rec(5, Some(1), "merge", 0, 92, 100),
        ];
        let p = analyze_batch_loop(&spans, 8);
        assert_eq!(p.submit_ns, 5);
        assert_eq!(p.estimate_ns, 85);
        assert_eq!(p.wait_ns, 2);
        assert_eq!(p.merge_ns, 8);
        assert_eq!(p.idle_ns, 0);
    }

    #[test]
    fn profile_json_round_trips() {
        let profile = Profile {
            kernel: "S-W".into(),
            mode: "full".into(),
            tree: aggregate_spans(&threaded_batch()),
            metrics: {
                let r = crate::metrics::MetricsRegistry::new();
                r.counter("evals").add(512);
                r.histogram("eval_ns").record(2_000);
                r.gauge("inflight").set(-1);
                r.snapshot()
            },
            correlation: vec![SpanMinutes {
                span: "merge".into(),
                events: 12,
                first_minute: 0.5,
                last_minute: 240.0,
            }],
            batch_loop: vec![analyze_batch_loop(&threaded_batch(), 2)],
        };
        let j = profile.to_json();
        let text = j.render();
        let back = Profile::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, profile);
    }

    #[test]
    fn structure_is_paths_only() {
        let profile = Profile {
            kernel: "S-W".into(),
            mode: "full".into(),
            tree: aggregate_spans(&threaded_batch()),
            ..Profile::default()
        };
        let s = profile.structure();
        let paths: Vec<&str> = s
            .get("span_paths")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter_map(Json::as_str)
            .collect();
        // `pool_chunk` is recorded in the tree but excluded from the
        // structure golden: whether a worker (vs the submitter) claims
        // a chunk is host scheduling, not pipeline shape.
        assert_eq!(
            paths,
            [
                "batch",
                "batch/estimate",
                "batch/merge",
                "batch/submit",
                "batch/wait",
            ]
        );
        assert!(s.render().find("_ns").is_none(), "no timings in structure");
    }

    #[test]
    fn folded_stacks_use_self_time() {
        let profile = Profile {
            kernel: "S-W".into(),
            mode: "full".into(),
            tree: aggregate_spans(&threaded_batch()),
            ..Profile::default()
        };
        let folded = profile.folded();
        assert!(folded.contains("batch;submit 10"));
        assert!(folded.contains("pool_chunk 178"));
        for line in folded.lines() {
            assert!(line.rsplit_once(' ').unwrap().1.parse::<u64>().is_ok());
        }
    }

    #[test]
    fn render_text_mentions_every_section() {
        let profile = Profile {
            kernel: "S-W".into(),
            mode: "full".into(),
            tree: aggregate_spans(&threaded_batch()),
            metrics: {
                let r = crate::metrics::MetricsRegistry::new();
                r.histogram("eval_ns").record(100);
                r.counter("cache_hits").inc();
                r.snapshot()
            },
            correlation: vec![SpanMinutes {
                span: "tune".into(),
                events: 3,
                first_minute: 1.0,
                last_minute: 3.0,
            }],
            batch_loop: vec![analyze_batch_loop(&threaded_batch(), 2)],
        };
        let text = profile.render_text();
        assert!(text.contains("span tree"));
        assert!(text.contains("batch-loop attribution"));
        assert!(text.contains("dual-clock join"));
        assert!(text.contains("latency histograms"));
        assert!(text.contains("counters"));
    }
}
