#![warn(missing_docs)]

//! # s2fa-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5) from
//! this reproduction:
//!
//! * `table1` — the identified design space per kernel (Table 1);
//! * `table2` — resource utilization and clock frequency of the best
//!   DSE designs (Table 2);
//! * `fig3`  — DSE convergence, S2FA vs vanilla OpenTuner vs the trivial
//!   stopping criterion (Fig. 3);
//! * `fig4`  — speedups of manual and S2FA-generated designs over the
//!   single-threaded JVM (Fig. 4) and the headline numbers of §5/§7.
//!
//! The library half holds shared measurement utilities (JVM baseline
//! timing, speedup math, ASCII rendering) so the binaries stay thin.

pub mod baseline;
pub mod chart;
pub mod results;

pub use baseline::{fpga_time_ms, jvm_ns_per_task, speedup, BASELINE_TASKS, SAMPLE_TASKS};
pub use results::Json;
