//! Baseline measurement utilities.
//!
//! Fig. 4 normalizes accelerator performance against "a single-threaded
//! Spark executor on the JVM ... because only one thread is necessary for
//! launching FPGA and other threads are able to perform other tasks
//! simultaneously" (§5.2). The JVM time comes from the cost-model
//! interpreter over a sample of records, scaled to the full dataset.

use s2fa_sjvm::{HostValue, Interp, KernelSpec, Shape};

/// Tasks in the evaluation dataset (per Spark partition).
pub const BASELINE_TASKS: u64 = 1 << 20;

/// Records actually interpreted to estimate the per-task JVM cost.
pub const SAMPLE_TASKS: usize = 8;

/// Pads string/array leaves to the record shape (what the Spark runtime's
/// serialized records look like on both paths).
pub fn pad_to_shape(v: &HostValue, shape: &Shape) -> HostValue {
    match (v, shape) {
        (HostValue::Str(s), Shape::Array(_, n)) => {
            let mut bytes: Vec<HostValue> = s.bytes().map(|b| HostValue::I(b as i64)).collect();
            bytes.resize(*n as usize, HostValue::I(0));
            HostValue::Arr(bytes)
        }
        (HostValue::Arr(items), Shape::Array(_, n)) => {
            let mut items = items.clone();
            while items.len() < *n as usize {
                items.push(match items.first() {
                    Some(HostValue::F(_)) => HostValue::F(0.0),
                    _ => HostValue::I(0),
                });
            }
            HostValue::Arr(items)
        }
        (HostValue::Tuple(vs) | HostValue::Obj(_, vs), Shape::Composite(fs)) => {
            HostValue::Tuple(vs.iter().zip(fs).map(|(v, f)| pad_to_shape(v, f)).collect())
        }
        (v, Shape::Bcast(inner)) => pad_to_shape(v, inner),
        _ => v.clone(),
    }
}

/// Average modelled JVM nanoseconds per task for a kernel over a sample.
///
/// # Panics
///
/// Panics if the sample is empty or the kernel faults (the workloads are
/// all verified by the test suite first).
pub fn jvm_ns_per_task(spec: &KernelSpec, sample: &[HostValue]) -> f64 {
    assert!(!sample.is_empty(), "need at least one sample record");
    let mut interp = Interp::new(&spec.classes, &spec.methods);
    let mut total = 0.0;
    for rec in sample {
        let padded = pad_to_shape(rec, &spec.input_shape);
        let (_, stats) = interp
            .run(spec.entry, std::slice::from_ref(&padded))
            .expect("workload kernels execute on the JVM path");
        total += stats.ns;
    }
    total / sample.len() as f64
}

/// End-to-end accelerator time for `tasks` records given the final
/// design's estimate (amortized batch scaling plus a fixed driver setup).
pub fn fpga_time_ms(estimate: &s2fa_hlssim::Estimate, tasks: u64) -> f64 {
    0.15 + estimate.time_ms_for_tasks(tasks)
}

/// Speedup of an accelerator over the JVM baseline for `tasks` records.
pub fn speedup(jvm_ns_per_task: f64, estimate: &s2fa_hlssim::Estimate, tasks: u64) -> f64 {
    let jvm_ms = jvm_ns_per_task * tasks as f64 / 1e6;
    jvm_ms / fpga_time_ms(estimate, tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_workloads::all_workloads;

    #[test]
    fn jvm_baseline_is_positive_for_every_workload() {
        for w in all_workloads() {
            let sample = (w.gen_input)(2, 3);
            let ns = jvm_ns_per_task(&w.spec, &sample);
            assert!(ns > 0.0, "{}", w.name);
        }
    }

    #[test]
    fn sw_is_the_most_expensive_jvm_kernel() {
        let mut costs: Vec<(&str, f64)> = all_workloads()
            .iter()
            .map(|w| {
                let sample = (w.gen_input)(2, 3);
                (w.name, jvm_ns_per_task(&w.spec, &sample))
            })
            .collect();
        costs.sort_by(|a, b| b.1.total_cmp(&a.1));
        assert_eq!(costs[0].0, "S-W", "order: {costs:?}");
    }
}
