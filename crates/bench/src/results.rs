//! Minimal JSON emission for experiment results.
//!
//! The experiment binaries print human-readable tables *and* drop
//! machine-readable JSON under `results/` so plots and regression checks
//! can consume the numbers without scraping stdout. The writer is a tiny
//! purpose-built emitter (no external JSON dependency is needed for
//! write-only output).

use std::fmt::Write as _;
use std::path::Path;

/// A JSON value under construction.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String helper.
    pub fn s(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Number helper (non-finite values map to `null`, which JSON
    /// requires).
    pub fn n(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(v)
        } else {
            Json::Null
        }
    }

    /// Renders with 2-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad1 = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *v as i64);
                } else {
                    let _ = write!(out, "{v}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, it) in items.iter().enumerate() {
                    out.push_str(&pad1);
                    it.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&pad1);
                    Json::Str(k.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

/// Writes a JSON document under `results/<name>.json` (relative to the
/// workspace root when run via cargo) and reports the path on stdout.
pub fn save(name: &str, doc: &Json) {
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::write(&path, doc.render()) {
        Ok(()) => println!("(results written to {})", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj(vec![
            ("name", Json::s("S-W")),
            ("speedup", Json::n(125.9)),
            ("feasible", Json::Bool(true)),
            ("trace", Json::Arr(vec![Json::n(1.0), Json::n(0.5)])),
            ("nan_is_null", Json::n(f64::NAN)),
        ]);
        let r = doc.render();
        assert!(r.contains("\"name\": \"S-W\""));
        assert!(r.contains("\"speedup\": 125.9"));
        assert!(r.contains("\"feasible\": true"));
        assert!(r.contains("\"nan_is_null\": null"));
        // integral floats render as integers
        assert!(r.contains("1,"));
    }

    #[test]
    fn escapes_strings() {
        let r = Json::s("a\"b\\c\nd").render();
        assert_eq!(r.trim(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn empty_collections() {
        assert_eq!(Json::Arr(vec![]).render().trim(), "[]");
        assert_eq!(Json::Obj(vec![]).render().trim(), "{}");
    }
}
