//! Minimal ASCII chart rendering for the figure binaries.

/// Renders a log-scale horizontal bar for a value within `[1, max]`.
pub fn log_bar(value: f64, max: f64, width: usize) -> String {
    if value <= 1.0 || max <= 1.0 {
        return String::new();
    }
    let frac = (value.ln() / max.ln()).clamp(0.0, 1.0);
    "█".repeat((frac * width as f64).round() as usize)
}

/// Downsamples a convergence trace to at most `points` entries, always
/// keeping the first and last.
pub fn downsample(trace: &[(f64, f64)], points: usize) -> Vec<(f64, f64)> {
    if trace.len() <= points || points < 2 {
        return trace.to_vec();
    }
    let mut out = Vec::with_capacity(points);
    let step = (trace.len() - 1) as f64 / (points - 1) as f64;
    for i in 0..points {
        out.push(trace[(i as f64 * step).round() as usize]);
    }
    out.dedup_by(|a, b| a.0 == b.0);
    out
}

/// A named series sampled at arbitrary minutes.
pub type Series<'a> = (&'a str, Box<dyn Fn(f64) -> f64 + 'a>);

/// Renders two convergence series (minute → normalized value) side by
/// side as a fixed-grid text plot, sampled at the given minutes.
pub fn convergence_rows(minutes: &[f64], series: &[Series<'_>]) -> String {
    let mut out = String::new();
    out.push_str("  min ");
    for (name, _) in series {
        out.push_str(&format!("{name:>14}"));
    }
    out.push('\n');
    for &m in minutes {
        out.push_str(&format!("{m:>5.0} "));
        for (_, f) in series {
            let v = f(m);
            if v.is_finite() {
                out.push_str(&format!("{v:>14.4}"));
            } else {
                out.push_str(&format!("{:>14}", "-"));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_bar_scales() {
        assert_eq!(log_bar(1.0, 1000.0, 30), "");
        let short = log_bar(10.0, 1000.0, 30).chars().count();
        let long = log_bar(1000.0, 1000.0, 30).chars().count();
        assert!(long > short);
        assert_eq!(long, 30);
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let t: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, 100.0 - i as f64)).collect();
        let d = downsample(&t, 5);
        assert_eq!(d.first(), Some(&(0.0, 100.0)));
        assert_eq!(d.last(), Some(&(99.0, 1.0)));
        assert!(d.len() <= 5);
    }

    #[test]
    fn convergence_rows_format() {
        let f: Box<dyn Fn(f64) -> f64> = Box::new(|m| 100.0 / (m + 1.0));
        let rows = convergence_rows(&[0.0, 60.0], &[("s2fa", f)]);
        assert!(rows.contains("s2fa"));
        assert!(rows.lines().count() == 3);
    }
}
