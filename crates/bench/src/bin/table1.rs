//! Regenerates **Table 1** — the target design space — and reports the
//! identified space of every evaluation kernel.
//!
//! ```text
//! cargo run --release -p s2fa-bench --bin table1
//! ```

use s2fa::compile_kernel;
use s2fa_bench::results::{save, Json};
use s2fa_dse::DesignSpace;
use s2fa_hlsir::analysis;
use s2fa_workloads::all_workloads;

fn main() {
    println!("Table 1: The Target Design Space");
    println!("--------------------------------");
    println!(
        "| Factor                               | Design Space (Values)                     |"
    );
    println!(
        "|--------------------------------------|-------------------------------------------|"
    );
    println!(
        "| Buffer bit-width                     | b = 2^n, 8 < b <= 512, per interface buf  |"
    );
    println!(
        "| Loop tiling                          | t = 2^n, 1 < t < TC(L), plus off          |"
    );
    println!(
        "| Loop parallel (coarse-/fine-grained) | u = 2^n, 1 < u < TC(L), plus off          |"
    );
    println!(
        "| Loop pipeline (coarse-/fine-grained) | p in {{on, off, flatten}}                   |"
    );
    println!();
    println!("Identified design space per kernel (batch hint = 1024 tasks):");
    println!();
    println!("| Kernel  | Loops | Interface buffers | Tunable params | Design points |");
    println!("|---------|-------|-------------------|----------------|---------------|");
    let mut largest = ("", 0.0f64);
    let mut json_rows = Vec::new();
    for w in all_workloads() {
        let g = compile_kernel(&w.spec).expect("workloads compile");
        let s = analysis::summarize(&g.cfunc, 1024).expect("workloads analyze");
        let ds = DesignSpace::build(&s);
        let n_buffers = g.input_layout.slots.len() + g.output_layout.slots.len();
        let log10 = ds.size_log10();
        if log10 > largest.1 {
            largest = (w.name, log10);
        }
        println!(
            "| {:<7} | {:>5} | {:>17} | {:>14} | 10^{:<10.1} |",
            w.name,
            s.loops.len(),
            n_buffers,
            ds.space().params().len(),
            log10
        );
        json_rows.push(Json::obj(vec![
            ("kernel", Json::s(w.name)),
            ("loops", Json::n(s.loops.len() as f64)),
            ("interface_buffers", Json::n(n_buffers as f64)),
            ("tunable_params", Json::n(ds.space().params().len() as f64)),
            ("design_points_log10", Json::n(log10)),
        ]));
    }
    save("table1", &Json::Arr(json_rows));
    println!();
    println!(
        "Largest space: {} with ~10^{:.1} design points — \"it is impractical to \
         explore this tremendous design space exhaustively\" (§4.1).",
        largest.0, largest.1
    );
}
