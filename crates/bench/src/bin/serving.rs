//! Serving-runtime evaluation — `results/BENCH_serving.json`.
//!
//! ```text
//! cargo run --release -p s2fa-bench --bin serving [-- --smoke]
//! ```
//!
//! Compiles all eight Table-2 workloads through the manual expert flow
//! (no DSE), registers the resulting designs with one Blaze accelerator
//! registry, and serves one tenant per workload through the blaze
//! serving runtime (admission control → per-accelerator queues → batch
//! forming → simulated cluster execution → reply) under three arrival
//! regimes:
//!
//! * `light`    — 25% of the cluster's modelled capacity,
//! * `moderate` — 75%,
//! * `overload` — 150% (queues saturate; admission control rejects).
//!
//! Per-tenant arrival rates are sized from each design's own time model
//! (`setup_ms + per_task_ms × records`), so every workload contributes
//! the same utilization share regardless of how fast its design is.
//! The whole run is a deterministic virtual-clock simulation: numbers
//! are bit-identical across hosts and `--smoke`/full only differ in
//! request counts.
//!
//! For each regime the JSON artifact reports offered vs delivered
//! throughput, p50/p90/p99 latency (via the `s2fa-obs` log-linear
//! histogram, recorded in microseconds), queue depth, the batch-size
//! distribution, the fallback fraction, and per-tenant counters.
//!
//! `--smoke` is the CI gate: fewer requests, then the artifact shape is
//! validated — three regimes present, positive throughput, finite
//! percentiles, conservation (submitted = completed + rejected), and a
//! fallback fraction of exactly zero (all eight kernels are registered,
//! so nothing may take the JVM path). Any violation exits non-zero.

use s2fa::{S2fa, S2faOptions};
use s2fa_bench::results::{save, Json};
use s2fa_blaze::{AccelTimeModel, ServeOutcome};
use s2fa_blaze::{AcceleratorRegistry, ServingConfig, ServingRuntime, TenantSpec};
use s2fa_hlsir::analysis;
use s2fa_obs::{Histogram, Profiler};
use s2fa_trace::NullSink;
use s2fa_workloads::all_workloads;

/// One registered design being served.
struct Served {
    name: &'static str,
    accel_id: String,
    fallback: s2fa_sjvm::KernelSpec,
    gen_input: fn(usize, u64) -> Vec<s2fa_sjvm::HostValue>,
    /// Modelled ms to execute one request's records on the design.
    request_ms: f64,
}

/// (utilization label, fraction of modelled cluster capacity offered).
const REGIMES: [(&str, f64); 3] = [("light", 0.25), ("moderate", 0.75), ("overload", 1.5)];

/// Compiles every workload through the manual flow and registers the
/// designs. Returns the serving table plus the shared registry.
fn build_cluster(records_per_request: usize) -> (AcceleratorRegistry, Vec<Served>) {
    let framework = S2fa::new(S2faOptions::default());
    let registry = AcceleratorRegistry::new();
    let mut served = Vec::new();
    for w in all_workloads() {
        let generated = s2fa::compile_kernel(&w.manual_spec).expect("manual kernels compile");
        let summary = analysis::summarize(&generated.cfunc, 1024).expect("manual kernels analyze");
        let cfg = (w.manual_config)(&summary);
        let compiled = framework
            .compile_with_config(&w.manual_spec, &cfg)
            .unwrap_or_else(|e| panic!("{} manual flow: {e}", w.name));
        let model = compiled.accelerator.time_model.unwrap_or(AccelTimeModel {
            per_task_ms: 0.001,
            setup_ms: 0.1,
        });
        served.push(Served {
            name: w.name,
            accel_id: compiled.accelerator.id.clone(),
            fallback: w.spec.clone(),
            gen_input: w.gen_input,
            request_ms: model.batch_ms(records_per_request as u64),
        });
        registry.register(compiled.accelerator);
    }
    (registry, served)
}

/// Sizes per-tenant arrival rates so the aggregate offered load equals
/// `utilization` × the modelled capacity of `nodes` workers, split
/// evenly across tenants. Tenant i's capacity share is
/// `nodes / (tenants × request_ms_i)` requests per virtual ms.
fn tenants_for(
    served: &[Served],
    utilization: f64,
    nodes: usize,
    requests: usize,
    records_per_request: usize,
) -> Vec<TenantSpec> {
    let n = served.len() as f64;
    served
        .iter()
        .enumerate()
        .map(|(i, s)| TenantSpec {
            name: s.name.to_string(),
            accel_id: s.accel_id.clone(),
            fallback: s.fallback.clone(),
            rate_per_ms: utilization * nodes as f64 / (n * s.request_ms.max(1e-6)),
            requests,
            records_per_request,
            gen_input: s.gen_input,
            seed: 0x53_46_41 ^ ((i as u64 + 1) * 0x9E37),
        })
        .collect()
}

/// Runs one regime and folds the outcome into a JSON object.
fn run_regime(
    registry: &AcceleratorRegistry,
    served: &[Served],
    config: ServingConfig,
    label: &str,
    utilization: f64,
    requests: usize,
    records_per_request: usize,
) -> (Json, ServeOutcome) {
    let tenants = tenants_for(
        served,
        utilization,
        config.nodes,
        requests,
        records_per_request,
    );
    let runtime = ServingRuntime::new(registry, config).expect("valid serving config");
    let outcome = runtime
        .serve(&tenants, &NullSink, &Profiler::disabled())
        .unwrap_or_else(|e| panic!("regime {label}: {e}"));
    let stats = &outcome.stats;

    // Latency percentiles via the obs histogram, in µs for resolution.
    let hist = Histogram::new();
    for l in outcome.latencies_ms() {
        hist.record((l * 1000.0).round() as u64);
    }
    let snap = hist.snapshot();
    let us = |v: u64| v as f64 / 1000.0;

    let offered_per_ms: f64 = tenants.iter().map(|t| t.rate_per_ms).sum();
    let throughput_per_ms = if stats.makespan_ms > 0.0 {
        stats.completed() as f64 / stats.makespan_ms
    } else {
        0.0
    };

    let batch_sizes = Json::Obj(
        stats
            .batch_sizes
            .iter()
            .map(|(size, count)| (size.to_string(), Json::n(*count as f64)))
            .collect(),
    );
    let per_tenant = Json::Arr(
        tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let done = outcome
                    .outcomes
                    .iter()
                    .filter(|o| o.tenant == i && o.latency_ms().is_some())
                    .count();
                let rejected = t.requests - done;
                Json::obj(vec![
                    ("tenant", Json::s(t.name.clone())),
                    ("rate_per_ms", Json::n(t.rate_per_ms)),
                    ("completed", Json::n(done as f64)),
                    ("rejected", Json::n(rejected as f64)),
                ])
            })
            .collect(),
    );

    let doc = Json::obj(vec![
        ("regime", Json::s(label)),
        ("utilization", Json::n(utilization)),
        ("offered_rps", Json::n(offered_per_ms * 1000.0)),
        ("throughput_rps", Json::n(throughput_per_ms * 1000.0)),
        (
            "latency_ms",
            Json::obj(vec![
                ("p50", Json::n(us(snap.p50))),
                ("p90", Json::n(us(snap.p90))),
                ("p99", Json::n(us(snap.p99))),
                ("mean", Json::n(snap.mean() / 1000.0)),
                ("max", Json::n(us(snap.max))),
            ]),
        ),
        ("submitted", Json::n(stats.submitted as f64)),
        ("completed", Json::n(stats.completed() as f64)),
        ("rejected", Json::n(stats.rejected as f64)),
        ("fallback_fraction", Json::n(stats.fallback_fraction())),
        ("max_queue_depth", Json::n(stats.max_queue_depth as f64)),
        ("batches", Json::n(stats.batches as f64)),
        ("mean_batch_size", Json::n(stats.mean_batch_size())),
        ("batch_sizes", batch_sizes),
        ("makespan_ms", Json::n(stats.makespan_ms)),
        ("per_tenant", per_tenant),
    ]);
    (doc, outcome)
}

/// `--smoke` artifact checks; returns human-readable violations.
fn validate_doc(doc: &Json) -> Vec<String> {
    let mut bad = Vec::new();
    let Json::Obj(top) = doc else {
        return vec!["artifact root is not an object".into()];
    };
    let field = |pairs: &[(String, Json)], k: &str| -> Option<Json> {
        pairs.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone())
    };
    let Some(Json::Arr(regimes)) = field(top, "regimes") else {
        return vec!["artifact has no `regimes` array".into()];
    };
    if regimes.len() < 3 {
        bad.push(format!("expected >= 3 regimes, found {}", regimes.len()));
    }
    for r in &regimes {
        let Json::Obj(pairs) = r else {
            bad.push("regime entry is not an object".into());
            continue;
        };
        let name = match field(pairs, "regime") {
            Some(Json::Str(s)) => s,
            _ => "?".to_string(),
        };
        let num = |k: &str| -> Option<f64> {
            match field(pairs, k) {
                Some(Json::Num(v)) => Some(v),
                _ => None,
            }
        };
        match num("throughput_rps") {
            Some(t) if t > 0.0 => {}
            _ => bad.push(format!("{name}: throughput_rps missing or not positive")),
        }
        match field(pairs, "latency_ms") {
            Some(Json::Obj(lat)) => {
                for k in ["p50", "p90", "p99"] {
                    match field(&lat, k) {
                        Some(Json::Num(v)) if v.is_finite() && v >= 0.0 => {}
                        _ => bad.push(format!("{name}: latency_ms.{k} missing/non-finite")),
                    }
                }
            }
            _ => bad.push(format!("{name}: latency_ms missing")),
        }
        match num("fallback_fraction") {
            Some(0.0) => {}
            Some(f) => bad.push(format!(
                "{name}: fallback fraction {f} != 0 with all kernels registered"
            )),
            None => bad.push(format!("{name}: fallback_fraction missing")),
        }
        match (num("submitted"), num("completed"), num("rejected")) {
            (Some(s), Some(c), Some(x)) if s == c + x => {}
            _ => bad.push(format!("{name}: submitted != completed + rejected")),
        }
    }
    bad
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (requests, records_per_request) = if smoke { (40, 16) } else { (200, 64) };
    let config = ServingConfig {
        nodes: 4,
        exec_threads: host_cores(),
        max_batch: 8,
        max_wait_ms: 2.0,
        max_inflight: 32,
        queue_capacity: 64,
    };

    println!(
        "Serving bench: 8 manual designs on {} simulated nodes, {} requests/tenant x {} records",
        config.nodes, requests, records_per_request
    );
    let (registry, served) = build_cluster(records_per_request);
    println!("Registered designs:");
    for s in &served {
        println!(
            "  {:<7} {:>9.4} ms per {}-record request",
            s.name, s.request_ms, records_per_request
        );
    }

    let mut regime_docs = Vec::new();
    println!(
        "\n{:<9} {:>11} {:>11} {:>9} {:>9} {:>9} {:>6} {:>6} {:>7}",
        "regime",
        "offered r/s",
        "actual r/s",
        "p50 ms",
        "p90 ms",
        "p99 ms",
        "rej",
        "qdepth",
        "batch"
    );
    for (label, utilization) in REGIMES {
        let (doc, outcome) = run_regime(
            &registry,
            &served,
            config,
            label,
            utilization,
            requests,
            records_per_request,
        );
        let stats = &outcome.stats;
        let hist = Histogram::new();
        for l in outcome.latencies_ms() {
            hist.record((l * 1000.0).round() as u64);
        }
        let snap = hist.snapshot();
        println!(
            "{:<9} {:>11.1} {:>11.1} {:>9.3} {:>9.3} {:>9.3} {:>6} {:>6} {:>7.2}",
            label,
            tenants_for(
                &served,
                utilization,
                config.nodes,
                requests,
                records_per_request
            )
            .iter()
            .map(|t| t.rate_per_ms)
            .sum::<f64>()
                * 1000.0,
            if stats.makespan_ms > 0.0 {
                stats.completed() as f64 / stats.makespan_ms * 1000.0
            } else {
                0.0
            },
            snap.p50 as f64 / 1000.0,
            snap.p90 as f64 / 1000.0,
            snap.p99 as f64 / 1000.0,
            stats.rejected,
            stats.max_queue_depth,
            stats.mean_batch_size(),
        );
        if stats.fallback_fraction() > 0.0 {
            eprintln!(
                "warning: {label}: {:.1}% of requests fell back to the JVM",
                stats.fallback_fraction() * 100.0
            );
        }
        regime_docs.push(doc);
    }

    let doc = Json::obj(vec![
        ("bench", Json::s("serving")),
        ("smoke", Json::Bool(smoke)),
        ("nodes", Json::n(config.nodes as f64)),
        ("max_batch", Json::n(config.max_batch as f64)),
        ("max_wait_ms", Json::n(config.max_wait_ms)),
        ("max_inflight", Json::n(config.max_inflight as f64)),
        ("queue_capacity", Json::n(config.queue_capacity as f64)),
        ("requests_per_tenant", Json::n(requests as f64)),
        ("records_per_request", Json::n(records_per_request as f64)),
        (
            "kernels",
            Json::Arr(served.iter().map(|s| Json::s(s.name)).collect()),
        ),
        ("regimes", Json::Arr(regime_docs)),
    ]);
    save("BENCH_serving", &doc);

    if smoke {
        let bad = validate_doc(&doc);
        if bad.is_empty() {
            println!("\nsmoke: BENCH_serving.json shape OK, fallback fraction 0 in all regimes");
        } else {
            for b in &bad {
                eprintln!("smoke FAIL: {b}");
            }
            std::process::exit(1);
        }
    }
}

/// Worker threads for functional batch execution (timing-neutral). Uses
/// the `S2FA_HOST_CORES` override when CI pins the container.
fn host_cores() -> usize {
    if let Ok(v) = std::env::var("S2FA_HOST_CORES") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
