//! Regenerates **Fig. 3** — the design-space exploration process of S2FA
//! (solid lines) versus vanilla OpenTuner (dashed lines), both on eight
//! cores, plus the §5.2 ablation of the trivial stopping criterion.
//!
//! The y-axis is the normalized execution cycle, normalized (as in the
//! paper) to the first design found from the random seed of the vanilla
//! OpenTuner run.
//!
//! ```text
//! cargo run --release -p s2fa-bench --bin fig3
//! ```

use s2fa::compile_kernel;
use s2fa_bench::chart::{convergence_rows, downsample, Series};
use s2fa_bench::results::{save, Json};
use s2fa_dse::{run_dse, vanilla_options, DseOptions, DseOutcome, StoppingKind};
use s2fa_hlsir::analysis;
use s2fa_hlssim::Estimator;
use s2fa_workloads::all_workloads;

/// Minutes at which the series are sampled for the text plot.
const SAMPLES: &[f64] = &[10.0, 30.0, 60.0, 90.0, 120.0, 180.0, 240.0];

struct KernelResult {
    name: &'static str,
    s2fa: DseOutcome,
    vanilla: DseOutcome,
    trivial: DseOutcome,
    /// First point of the vanilla run (the normalization base).
    base: f64,
}

fn main() {
    let estimator = Estimator::new();
    let mut results = Vec::new();
    for w in all_workloads() {
        let g = compile_kernel(&w.spec).expect("workloads compile");
        let s = analysis::summarize(&g.cfunc, 1024).expect("workloads analyze");
        let vanilla = run_dse(&s, &estimator, &vanilla_options());
        let s2fa = run_dse(&s, &estimator, &DseOptions::s2fa());
        let mut trivial_opts = DseOptions::s2fa();
        trivial_opts.stopping = StoppingKind::Trivial { k: 10 };
        let trivial = run_dse(&s, &estimator, &trivial_opts);
        let base = vanilla
            .convergence
            .first()
            .map(|&(_, v)| v)
            .unwrap_or(f64::NAN);
        results.push(KernelResult {
            name: w.name,
            s2fa,
            vanilla,
            trivial,
            base,
        });
    }

    println!("Fig. 3: DSE process — normalized execution cycle vs exploration time");
    println!("(normalized to vanilla OpenTuner's random-seed starting design)");
    for r in &results {
        println!("\n=== {} ===", r.name);
        let s2 = &r.s2fa;
        let va = &r.vanilla;
        let base = r.base;
        let series: Vec<Series<'_>> = vec![
            ("S2FA", Box::new(move |m| s2.best_at_minute(m) / base)),
            ("OpenTuner", Box::new(move |m| va.best_at_minute(m) / base)),
        ];
        print!("{}", convergence_rows(SAMPLES, &series));
        println!(
            "  S2FA terminated at {:.0} min ({} evals); OpenTuner ran the fixed {:.0} min ({} evals)",
            r.s2fa.elapsed_minutes,
            r.s2fa.total_evaluations,
            r.vanilla.elapsed_minutes,
            r.vanilla.total_evaluations
        );
    }

    // --- Summary statistics (the §5.2 claims) -----------------------------
    println!("\nSummary");
    println!("-------");
    let mut time_savings = Vec::new();
    let mut qor_ratios = Vec::new();
    for r in &results {
        // Time for S2FA to reach (within 2 % of) vanilla's final QoR —
        // the tolerance keeps the metric meaningful when the two flows
        // converge to designs a hair apart.
        let target = r.vanilla.best_value() * 1.02;
        let t_s2fa = r
            .s2fa
            .convergence
            .iter()
            .find(|&&(_, v)| v <= target)
            .map(|&(m, _)| m);
        let saving = t_s2fa
            .map(|t| 100.0 * (1.0 - t / 240.0))
            .unwrap_or(f64::NAN);
        if saving.is_finite() {
            time_savings.push(saving);
        }
        let ratio = r.vanilla.best_value() / r.s2fa.best_value();
        qor_ratios.push(ratio);
        println!(
            "  {:<7} reach-vanilla-QoR time saving: {:>6} | final QoR ratio (vanilla/S2FA): {:.2}x | S2FA end: {:.1} h",
            r.name,
            t_s2fa
                .map(|t| format!("{:.1}%", 100.0 * (1.0 - t / 240.0)))
                .unwrap_or_else(|| "n/a".into()),
            ratio,
            r.s2fa.elapsed_minutes / 60.0,
        );
    }
    let avg_saving = time_savings.iter().sum::<f64>() / time_savings.len().max(1) as f64;
    let avg_end: f64 =
        results.iter().map(|r| r.s2fa.elapsed_minutes).sum::<f64>() / results.len() as f64 / 60.0;
    println!(
        "\n  Average time saving to reach vanilla's 4-hour QoR: {avg_saving:.1}% (paper: 52.5%)"
    );
    println!("  Average S2FA termination: {avg_end:.1} h (paper: ~1.9 h; vanilla fixed at 4 h)");
    let kmeans = results
        .iter()
        .find(|r| r.name == "KMeans")
        .expect("kmeans present");
    println!(
        "  KMeans exception (small space): vanilla reaches {:.2}x of S2FA's QoR (paper: parity)",
        kmeans.vanilla.best_value() / kmeans.s2fa.best_value()
    );

    // --- Trivial stopping criterion ablation ------------------------------
    println!("\nStopping-criterion ablation (entropy vs trivial 10-iteration rule):");
    let mut ent_end = 0.0;
    let mut triv_end = 0.0;
    let mut qor_delta = Vec::new();
    for r in &results {
        ent_end += r.s2fa.elapsed_minutes;
        triv_end += r.trivial.elapsed_minutes;
        qor_delta.push(r.s2fa.best_value() / r.trivial.best_value());
    }
    let n = results.len() as f64;
    let avg_delta = 100.0 * (qor_delta.iter().sum::<f64>() / qor_delta.len() as f64 - 1.0);
    println!(
        "  entropy ends at {:.1} h avg, trivial at {:.1} h avg; trivial QoR differs by {:+.1}% \
         (paper: trivial runs ~1 h longer for ~4% better QoR)",
        ent_end / n / 60.0,
        triv_end / n / 60.0,
        avg_delta
    );

    let series = |o: &DseOutcome, base: f64| {
        Json::Arr(
            downsample(&o.convergence, 64)
                .iter()
                .map(|&(m, v)| Json::Arr(vec![Json::n(m), Json::n(v / base)]))
                .collect(),
        )
    };
    save(
        "fig3",
        &Json::Arr(
            results
                .iter()
                .map(|r| {
                    Json::obj(vec![
                        ("kernel", Json::s(r.name)),
                        ("normalization_base_ms", Json::n(r.base)),
                        ("s2fa", series(&r.s2fa, r.base)),
                        ("opentuner", series(&r.vanilla, r.base)),
                        ("trivial_stop", series(&r.trivial, r.base)),
                        ("s2fa_end_minutes", Json::n(r.s2fa.elapsed_minutes)),
                        ("s2fa_best_ms", Json::n(r.s2fa.best_value())),
                        ("opentuner_best_ms", Json::n(r.vanilla.best_value())),
                    ])
                })
                .collect(),
        ),
    );
}
