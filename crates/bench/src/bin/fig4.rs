//! Regenerates **Fig. 4** — speedups of manual and S2FA-generated designs
//! over the original Spark transformation methods on a single-threaded
//! JVM executor (log scale) — plus the §5/§7 headline numbers.
//!
//! ```text
//! cargo run --release -p s2fa-bench --bin fig4
//! ```

use s2fa::report::geomean;
use s2fa::{S2fa, S2faOptions};
use s2fa_bench::chart::log_bar;
use s2fa_bench::results::{save, Json};
use s2fa_bench::{jvm_ns_per_task, speedup, BASELINE_TASKS, SAMPLE_TASKS};
use s2fa_hlsir::analysis;
use s2fa_workloads::all_workloads;

struct Row {
    name: &'static str,
    category: &'static str,
    manual: f64,
    auto: f64,
}

fn main() {
    let framework = S2fa::new(S2faOptions::default());
    let mut rows = Vec::new();
    println!(
        "Baseline: single-threaded Spark executor on the JVM over {} tasks",
        BASELINE_TASKS
    );
    for w in all_workloads() {
        let sample = (w.gen_input)(SAMPLE_TASKS, 2018);
        let jvm_ns = jvm_ns_per_task(&w.spec, &sample);

        // Automatic flow on the user-written kernel.
        let auto = framework
            .compile(&w.spec)
            .unwrap_or_else(|e| panic!("{} auto: {e}", w.name));

        // Manual expert design: possibly a restructured kernel, plus a
        // hand-picked configuration evaluated without any DSE.
        let manual_generated =
            s2fa::compile_kernel(&w.manual_spec).expect("manual kernels compile");
        let manual_summary =
            analysis::summarize(&manual_generated.cfunc, 1024).expect("manual kernels analyze");
        let manual_cfg = (w.manual_config)(&manual_summary);
        let manual = framework
            .compile_with_config(&w.manual_spec, &manual_cfg)
            .unwrap_or_else(|e| panic!("{} manual: {e}", w.name));

        rows.push(Row {
            name: w.name,
            category: w.category,
            manual: speedup(jvm_ns, &manual.estimate, BASELINE_TASKS),
            auto: speedup(jvm_ns, &auto.estimate, BASELINE_TASKS),
        });
        println!(
            "  {:<7} jvm {:>9.1} ns/task | auto {:>9.4} ms/batch @ {:>3.0} MHz | manual {:>9.4} ms/batch @ {:>3.0} MHz",
            w.name,
            jvm_ns,
            auto.estimate.time_ms,
            auto.estimate.freq_mhz,
            manual.estimate.time_ms,
            manual.estimate.freq_mhz
        );
    }

    let max = rows
        .iter()
        .map(|r| r.manual.max(r.auto))
        .fold(1.0f64, f64::max);
    println!("\nFig. 4: Speedup over the JVM (log scale)");
    println!("----------------------------------------");
    for r in &rows {
        println!(
            "{:<7} manual {:>8.1}x |{}",
            r.name,
            r.manual,
            log_bar(r.manual, max, 40)
        );
        println!(
            "{:<7} S2FA   {:>8.1}x |{}",
            "",
            r.auto,
            log_bar(r.auto, max, 40)
        );
    }

    println!("\nHeadline numbers");
    println!("----------------");
    let ml: Vec<&Row> = rows
        .iter()
        .filter(|r| r.category != "string proc." && r.category != "graph proc.")
        .collect();
    let string: Vec<&Row> = rows
        .iter()
        .filter(|r| r.category == "string proc.")
        .collect();
    let ml_max = ml.iter().map(|r| r.auto).fold(0.0f64, f64::max);
    let string_max = string.iter().map(|r| r.auto).fold(0.0f64, f64::max);
    let auto_geo = geomean(&rows.iter().map(|r| r.auto).collect::<Vec<_>>());
    let of_manual: Vec<f64> = rows.iter().map(|r| (r.auto / r.manual).min(1.0)).collect();
    let avg_of_manual = 100.0 * of_manual.iter().sum::<f64>() / of_manual.len() as f64;
    println!("  max ML-kernel speedup (S2FA):          {ml_max:.1}x   (paper: up to 49.9x)");
    println!("  max string-kernel speedup (S2FA):      {string_max:.1}x   (paper: up to 1225.2x)");
    println!("  geometric-mean speedup (S2FA):         {auto_geo:.1}x   (paper mean: 181.5x)");
    println!(
        "  S2FA vs manual designs:                {avg_of_manual:.0}%    (paper: ~85% on average)"
    );
    let lr = rows.iter().find(|r| r.name == "LR").expect("LR present");
    println!(
        "  LR gap (deep float pipeline):          S2FA reaches {:.0}% of manual",
        100.0 * lr.auto / lr.manual
    );
    let pr = rows.iter().find(|r| r.name == "PR").expect("PR present");
    println!(
        "  PR (communication-bound):              manual only {:.1}x — \"even the manual HLS \
         implementation cannot achieve a high performance\"",
        pr.manual
    );

    save(
        "fig4",
        &Json::obj(vec![
            ("baseline_tasks", Json::n(BASELINE_TASKS as f64)),
            (
                "kernels",
                Json::Arr(
                    rows.iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("name", Json::s(r.name)),
                                ("category", Json::s(r.category)),
                                ("manual_speedup", Json::n(r.manual)),
                                ("s2fa_speedup", Json::n(r.auto)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("s2fa_geomean", Json::n(auto_geo)),
            ("s2fa_vs_manual_pct", Json::n(avg_of_manual)),
        ]),
    );
}
