//! `s2fa-cli` — drive the framework on any evaluation kernel from the
//! command line, the way a downstream user would.
//!
//! ```text
//! cargo run --release -p s2fa-bench --bin s2fa_cli -- --kernel KMeans
//! cargo run --release -p s2fa-bench --bin s2fa_cli -- --kernel S-W --budget 120 --emit-c
//! cargo run --release -p s2fa-bench --bin s2fa_cli -- --kernel LR --manual --report
//! cargo run --release -p s2fa-bench --bin s2fa_cli -- --kernel KMeans --trace kmeans.jsonl
//! cargo run --release -p s2fa-bench --bin s2fa_cli -- --list
//! ```
//!
//! `--trace <path>` attaches the flight recorder: every structured event
//! of the DSE run (evaluations on the virtual timeline, partition
//! lifecycles, technique pulls/rewards, cache hits/misses) is appended to
//! `<path>` as one JSON object per line.

use s2fa::{S2fa, S2faOptions};
use s2fa_hlsir::analysis;
use s2fa_hlssim::report;
use s2fa_trace::{JsonlSink, TraceSink};
use s2fa_workloads::all_workloads;
use std::sync::Arc;

struct Args {
    kernel: Option<String>,
    budget: f64,
    tasks: u32,
    manual: bool,
    emit_c: bool,
    report: bool,
    list: bool,
    trace: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        kernel: None,
        budget: 240.0,
        tasks: 1024,
        manual: false,
        emit_c: false,
        report: false,
        list: false,
        trace: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--kernel" => {
                args.kernel = Some(it.next().ok_or("--kernel needs a name")?);
            }
            "--budget" => {
                args.budget = it
                    .next()
                    .ok_or("--budget needs minutes")?
                    .parse()
                    .map_err(|e| format!("bad --budget: {e}"))?;
            }
            "--tasks" => {
                args.tasks = it
                    .next()
                    .ok_or("--tasks needs a count")?
                    .parse()
                    .map_err(|e| format!("bad --tasks: {e}"))?;
            }
            "--trace" => {
                args.trace = Some(it.next().ok_or("--trace needs a path")?);
            }
            "--manual" => args.manual = true,
            "--emit-c" => args.emit_c = true,
            "--report" => args.report = true,
            "--list" => args.list = true,
            "--help" | "-h" => {
                return Err(USAGE.to_string());
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

const USAGE: &str = "usage: s2fa_cli --kernel <name> [--budget <minutes>] [--tasks <n>] \
[--manual] [--emit-c] [--report] [--trace <path>] | --list";

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if args.list {
        println!("available kernels:");
        for w in all_workloads() {
            println!("  {:<8} ({})", w.name, w.category);
        }
        return;
    }
    let Some(name) = args.kernel else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let Some(w) = all_workloads().into_iter().find(|w| w.name == name) else {
        eprintln!("unknown kernel `{name}` — try --list");
        std::process::exit(2);
    };

    let mut options = S2faOptions {
        tasks_hint: args.tasks,
        ..S2faOptions::default()
    };
    options.dse.budget_minutes = args.budget;
    let sink: Option<Arc<JsonlSink>> = args.trace.as_deref().map(|path| {
        Arc::new(JsonlSink::create(path).unwrap_or_else(|e| {
            eprintln!("cannot open trace file `{path}`: {e}");
            std::process::exit(2);
        }))
    });
    let mut framework = S2fa::new(options);
    if let Some(sink) = &sink {
        framework = framework.with_trace_sink(sink.clone() as Arc<dyn TraceSink>);
    }

    let wall = std::time::Instant::now();
    let compiled = if args.manual {
        let generated = s2fa::compile_kernel(&w.manual_spec).expect("manual kernel compiles");
        let summary =
            analysis::summarize(&generated.cfunc, args.tasks).expect("manual kernel analyzes");
        let cfg = (w.manual_config)(&summary);
        framework
            .compile_with_config(&w.manual_spec, &cfg)
            .expect("manual design synthesizes")
    } else {
        framework.compile(&w.spec).expect("automatic flow succeeds")
    };
    let wall = wall.elapsed();

    println!(
        "{} [{}] — {} flow",
        w.name,
        w.category,
        if args.manual { "manual" } else { "automatic" }
    );
    println!("design: {}", compiled.design.brief());
    println!("estimate: {}", compiled.estimate);
    if let Some(dse) = &compiled.dse {
        println!(
            "dse: {} evaluations over {} partitions, terminated at {:.0} virtual minutes",
            dse.total_evaluations, dse.partitions, dse.elapsed_minutes
        );
        if dse.killed_evals > 0 {
            println!(
                "dse: {} evaluation(s) straddled the deadline (harvested, clamped to budget)",
                dse.killed_evals
            );
        }
        let lookups = dse.cache.hits + dse.cache.misses;
        println!(
            "dse: {:.0} evals/sec wall-clock, cache hit rate {:.1}% ({} of {} lookups, {} racing overwrites)",
            dse.total_evaluations as f64 / wall.as_secs_f64().max(1e-9),
            100.0 * dse.cache.hit_rate(),
            dse.cache.hits,
            lookups,
            dse.cache.overwrites
        );
        if !dse.techniques.is_empty() {
            println!(
                "  {:<24} {:>5} {:>9}  best objective",
                "technique", "evals", "improved"
            );
            for t in &dse.techniques {
                println!(
                    "  {:<24} {:>5} {:>9}  {:.4}",
                    t.technique, t.evals, t.improvements, t.best_value
                );
            }
        }
    }
    if let Some(sink) = &sink {
        sink.flush();
        println!(
            "trace: {} events written to {}",
            sink.emitted(),
            sink.path().display()
        );
    }
    if args.emit_c {
        println!("\n--- generated HLS C ---\n{}", compiled.optimized_source);
    }
    if args.report {
        println!(
            "\n{}",
            report::render(
                &compiled.summary,
                &compiled.design,
                &compiled.estimate,
                framework.estimator().device()
            )
        );
    }
}
