//! `s2fa-cli` — drive the framework on any evaluation kernel from the
//! command line, the way a downstream user would.
//!
//! ```text
//! cargo run --release -p s2fa-bench --bin s2fa_cli -- --kernel KMeans
//! cargo run --release -p s2fa-bench --bin s2fa_cli -- --kernel S-W --budget 120 --emit-c
//! cargo run --release -p s2fa-bench --bin s2fa_cli -- --kernel LR --manual --report
//! cargo run --release -p s2fa-bench --bin s2fa_cli -- --kernel KMeans --trace kmeans.jsonl
//! cargo run --release -p s2fa-bench --bin s2fa_cli -- --kernel KMeans --metrics metrics.json
//! cargo run --release -p s2fa-bench --bin s2fa_cli -- --kernel KMeans --prescreen
//! cargo run --release -p s2fa-bench --bin s2fa_cli -- --kernel S-W --eval-threads 4 --chunk 64
//! cargo run --release -p s2fa-bench --bin s2fa_cli -- lint
//! cargo run --release -p s2fa-bench --bin s2fa_cli -- lint --format json --save
//! cargo run --release -p s2fa-bench --bin s2fa_cli -- profile --kernel S-W
//! cargo run --release -p s2fa-bench --bin s2fa_cli -- report --kernel S-W
//! cargo run --release -p s2fa-bench --bin s2fa_cli -- serve --util 1.5 --nodes 8
//! cargo run --release -p s2fa-bench --bin s2fa_cli -- serve --kernel KMeans --trace serve.jsonl
//! cargo run --release -p s2fa-bench --bin s2fa_cli -- --list
//! ```
//!
//! `--trace <path>` attaches the flight recorder: every structured event
//! of the DSE run (evaluations on the virtual timeline, partition
//! lifecycles, technique pulls/rewards, batched cache-stats deltas,
//! legality prunes) is appended to `<path>` as one JSON object per line.
//!
//! `--metrics <path>` attaches a metrics-only profiler (histograms and
//! counters live, span lanes inert) and dumps the registry standalone to
//! `<path>` after the run — per-eval latency, cache probe/lock-wait,
//! bandit pull, batch fan-out/join distributions, and the persistent
//! worker pool's job/chunk counters (a utilization line is printed when
//! the pool was live).
//!
//! `--eval-threads <n>` sizes the persistent evaluation worker pool the
//! DSE batch path fans out over (default: one per host core);
//! `--chunk <n>` fixes the work-unit size per pool dispatch (default 0
//! = auto-sized from batch length and worker count).
//!
//! `profile` runs one kernel's automatic flow under full host-side
//! profiling and writes the flight-recorder artifacts:
//! `results/PROFILE_<kernel>.json` (validated against
//! `docs/profile.schema.json` before writing), a timing-free structure
//! document for the CI golden diff, and folded stacks for flamegraph
//! tooling — then prints the human-readable report. A dedicated sweep
//! phase re-measures the threaded batch loop at each `--threads` count
//! (512-point batches on an uncached engine) so the report attributes
//! the batch loop's wall-time — spawn, dispatch, estimate, collect,
//! merge, idle — per thread count.
//!
//! `report` re-renders a previously written profile without running
//! anything.
//!
//! `serve` compiles every workload (or one selected with `--kernel`)
//! through the manual expert flow, registers the designs with one Blaze
//! accelerator registry, and plays a deterministic multi-tenant request
//! stream through the serving runtime at `--util` times the modelled
//! cluster capacity on `--nodes` simulated worker nodes. It prints
//! throughput, latency percentiles, queueing, and batching aggregates;
//! `--trace <path>` appends every serving event (submit, admit,
//! enqueue, batch_formed, execute, reply, reject) to `<path>` as JSONL
//! on the same flight-recorder schema the DSE uses.
//!
//! `lint` runs the `s2fa-lint` static analyses over every workload (or
//! one selected with `--kernel`) *without* exploring anything: the IR
//! well-formedness verifier before and after the structural transforms,
//! the dataflow-backed rules (`E3xx`/`W310`: provably uninitialized
//! reads, out-of-bounds affine indices, replication write-races, dead
//! stores) with the same transform differential, the per-seed legality
//! verdicts, and the sampled statically-dead fraction of each design
//! space. The process exits non-zero if any kernel has an
//! error-severity well-formedness or dataflow *defect* (seed prescreen
//! verdicts and `E303` replication races are search-space facts and
//! only reported). `--format json`
//! emits a machine-readable document; `--save` also writes it to
//! `results/lint_report.json` for the CI golden diff.
//!
//! `--dataflow-prescreen` (automatic flow) attaches the dependence
//! facts of `hlsir::dataflow` to the kernel summary before the DSE, so
//! the legality pre-screen additionally prunes design points that
//! replicate a loop with a proven cross-iteration write-race
//! (`S2FA-E303`). Off by default: without it, outcomes are
//! bit-identical to `--prescreen` (and, with neither, to no screen at
//! all).

use s2fa::lint::{
    dataflow_checks, factor_diagnostics, new_dataflow_errors, new_errors, verify_function,
    Legality, Severity,
};
use s2fa::{S2fa, S2faOptions};
use s2fa_bench::results::{save, Json};
use s2fa_blaze::{AcceleratorRegistry, ServingConfig, ServingRuntime, TenantSpec};
use s2fa_dse::{DesignSpace, EvalEngine};
use s2fa_hlsir::analysis;
use s2fa_hlssim::{report, Estimator};
use s2fa_merlin::{apply_structural, DesignConfig};
use s2fa_obs::{
    aggregate_spans, analyze_batch_loop, correlate, validate, verify_spans, CorrelatorSink,
    Histogram, Json as ObsJson, Profile, Profiler,
};
use s2fa_trace::{JsonlSink, NullSink, TraceSink};
use s2fa_tuner::{Config, Measurement, Objective, ThreadedObjective};
use s2fa_workloads::all_workloads;
use std::sync::Arc;

struct Args {
    lint: bool,
    profile: bool,
    report_cmd: bool,
    serve: bool,
    requests: usize,
    util: f64,
    nodes: usize,
    kernel: Option<String>,
    budget: f64,
    tasks: u32,
    manual: bool,
    emit_c: bool,
    report: bool,
    list: bool,
    trace: Option<String>,
    metrics: Option<String>,
    threads: Vec<usize>,
    eval_threads: Option<usize>,
    chunk: Option<usize>,
    profile_path: Option<String>,
    prescreen: bool,
    dataflow_prescreen: bool,
    format: Format,
    save: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Text,
    Json,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        lint: false,
        profile: false,
        report_cmd: false,
        serve: false,
        requests: 50,
        util: 0.75,
        nodes: 4,
        kernel: None,
        budget: 240.0,
        tasks: 1024,
        manual: false,
        emit_c: false,
        report: false,
        list: false,
        trace: None,
        metrics: None,
        threads: vec![1, 2, 4, 8],
        eval_threads: None,
        chunk: None,
        profile_path: None,
        prescreen: false,
        dataflow_prescreen: false,
        format: Format::Text,
        save: false,
    };
    let mut it = std::env::args().skip(1).peekable();
    match it.peek().map(String::as_str) {
        Some("lint") => {
            args.lint = true;
            it.next();
        }
        Some("profile") => {
            args.profile = true;
            it.next();
        }
        Some("report") => {
            args.report_cmd = true;
            it.next();
        }
        Some("serve") => {
            args.serve = true;
            it.next();
        }
        _ => {}
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--kernel" => {
                args.kernel = Some(it.next().ok_or("--kernel needs a name")?);
            }
            "--budget" => {
                args.budget = it
                    .next()
                    .ok_or("--budget needs minutes")?
                    .parse()
                    .map_err(|e| format!("bad --budget: {e}"))?;
            }
            "--tasks" => {
                args.tasks = it
                    .next()
                    .ok_or("--tasks needs a count")?
                    .parse()
                    .map_err(|e| format!("bad --tasks: {e}"))?;
            }
            "--trace" => {
                args.trace = Some(it.next().ok_or("--trace needs a path")?);
            }
            "--metrics" => {
                args.metrics = Some(it.next().ok_or("--metrics needs a path")?);
            }
            "--profile" => {
                args.profile_path = Some(it.next().ok_or("--profile needs a path")?);
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .ok_or("--threads needs a comma-separated list")?
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("bad --threads entry `{t}`: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
                if args.threads.is_empty() {
                    return Err("--threads needs at least one count".to_string());
                }
            }
            "--eval-threads" => {
                args.eval_threads = Some(
                    it.next()
                        .ok_or("--eval-threads needs a count")?
                        .parse()
                        .map_err(|e| format!("bad --eval-threads: {e}"))?,
                );
            }
            "--chunk" => {
                args.chunk = Some(
                    it.next()
                        .ok_or("--chunk needs a size (0 = auto)")?
                        .parse()
                        .map_err(|e| format!("bad --chunk: {e}"))?,
                );
            }
            "--format" => {
                args.format = match it.next().ok_or("--format needs text|json")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("bad --format `{other}` (text|json)")),
                };
            }
            "--requests" => {
                args.requests = it
                    .next()
                    .ok_or("--requests needs a count")?
                    .parse()
                    .map_err(|e| format!("bad --requests: {e}"))?;
                if args.requests == 0 {
                    return Err("--requests needs at least 1".to_string());
                }
            }
            "--util" => {
                args.util = it
                    .next()
                    .ok_or("--util needs a capacity fraction")?
                    .parse()
                    .map_err(|e| format!("bad --util: {e}"))?;
                if !(args.util > 0.0 && args.util.is_finite()) {
                    return Err("--util must be positive and finite".to_string());
                }
            }
            "--nodes" => {
                args.nodes = it
                    .next()
                    .ok_or("--nodes needs a count")?
                    .parse()
                    .map_err(|e| format!("bad --nodes: {e}"))?;
                if args.nodes == 0 {
                    return Err("--nodes needs at least 1".to_string());
                }
            }
            "--manual" => args.manual = true,
            "--emit-c" => args.emit_c = true,
            "--report" => args.report = true,
            "--list" => args.list = true,
            "--prescreen" => args.prescreen = true,
            "--dataflow-prescreen" => args.dataflow_prescreen = true,
            "--save" => args.save = true,
            "--help" | "-h" => {
                return Err(USAGE.to_string());
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

const USAGE: &str = "usage: s2fa_cli --kernel <name> [--budget <minutes>] [--tasks <n>] \
[--manual] [--emit-c] [--report] [--prescreen] [--dataflow-prescreen] [--eval-threads <n>] \
[--chunk <n>] \
[--trace <path>] [--metrics <path>] | --list\n       \
s2fa_cli lint [--kernel <name>] [--tasks <n>] [--format text|json] [--save]\n       \
s2fa_cli profile --kernel <name> [--budget <minutes>] [--tasks <n>] [--threads 1,2,4,8] \
[--chunk <n>]\n       \
s2fa_cli report (--kernel <name> | --profile <path>)\n       \
s2fa_cli serve [--kernel <name>] [--requests <n>] [--util <x>] [--nodes <n>] \
[--trace <path>]";

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if args.lint {
        std::process::exit(run_lint(&args));
    }
    if args.profile {
        std::process::exit(run_profile(&args));
    }
    if args.report_cmd {
        std::process::exit(run_report(&args));
    }
    if args.serve {
        std::process::exit(run_serve(&args));
    }
    if args.list {
        println!("available kernels:");
        for w in all_workloads() {
            println!("  {:<8} ({})", w.name, w.category);
        }
        return;
    }
    let Some(name) = args.kernel else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let Some(w) = all_workloads().into_iter().find(|w| w.name == name) else {
        eprintln!("unknown kernel `{name}` — try --list");
        std::process::exit(2);
    };

    let mut options = S2faOptions {
        tasks_hint: args.tasks,
        ..S2faOptions::default()
    };
    options.dse.budget_minutes = args.budget;
    options.dse.prescreen = args.prescreen;
    options.dse.dataflow_prescreen = args.dataflow_prescreen;
    if let Some(t) = args.eval_threads {
        options.dse.eval_threads = t;
    }
    if let Some(c) = args.chunk {
        options.dse.eval_chunk = c;
    }
    let sink: Option<Arc<JsonlSink>> = args.trace.as_deref().map(|path| {
        Arc::new(JsonlSink::create(path).unwrap_or_else(|e| {
            eprintln!("cannot open trace file `{path}`: {e}");
            std::process::exit(2);
        }))
    });
    let mut framework = S2fa::new(options);
    if let Some(sink) = &sink {
        framework = framework.with_trace_sink(sink.clone() as Arc<dyn TraceSink>);
    }
    let metrics_profiler = args.metrics.as_ref().map(|_| Profiler::metrics_only());
    if let Some(p) = &metrics_profiler {
        framework = framework.with_profiler(p.clone());
    }

    let wall = std::time::Instant::now();
    let compiled = if args.manual {
        let generated = s2fa::compile_kernel(&w.manual_spec).expect("manual kernel compiles");
        let summary =
            analysis::summarize(&generated.cfunc, args.tasks).expect("manual kernel analyzes");
        let cfg = (w.manual_config)(&summary);
        framework
            .compile_with_config(&w.manual_spec, &cfg)
            .expect("manual design synthesizes")
    } else {
        framework.compile(&w.spec).expect("automatic flow succeeds")
    };
    let wall = wall.elapsed();

    println!(
        "{} [{}] — {} flow",
        w.name,
        w.category,
        if args.manual { "manual" } else { "automatic" }
    );
    println!("design: {}", compiled.design.brief());
    println!("estimate: {}", compiled.estimate);
    if let Some(dse) = &compiled.dse {
        println!(
            "dse: {} evaluations over {} partitions, terminated at {:.0} virtual minutes",
            dse.total_evaluations, dse.partitions, dse.elapsed_minutes
        );
        if dse.killed_evals > 0 {
            println!(
                "dse: {} evaluation(s) straddled the deadline (harvested, clamped to budget)",
                dse.killed_evals
            );
        }
        let lookups = dse.cache.hits + dse.cache.misses;
        println!(
            "dse: {:.0} evals/sec wall-clock, cache hit rate {:.1}% ({} of {} lookups, {} racing overwrites)",
            dse.total_evaluations as f64 / wall.as_secs_f64().max(1e-9),
            100.0 * dse.cache.hit_rate(),
            dse.cache.hits,
            lookups,
            dse.cache.overwrites
        );
        if args.prescreen || args.dataflow_prescreen {
            println!(
                "dse: {} design point(s) pruned by the legality pre-screen",
                dse.pruned_illegal
            );
            for (code, n) in &dse.pruned_by_rule {
                if *n > 0 {
                    println!("  {code:<10} {n:>5}");
                }
            }
        }
        if !dse.techniques.is_empty() {
            println!(
                "  {:<24} {:>5} {:>9}  best objective",
                "technique", "evals", "improved"
            );
            for t in &dse.techniques {
                println!(
                    "  {:<24} {:>5} {:>9}  {:.4}",
                    t.technique, t.evals, t.improvements, t.best_value
                );
            }
        }
    }
    if let Some(sink) = &sink {
        sink.flush();
        println!(
            "trace: {} events written to {}",
            sink.emitted(),
            sink.path().display()
        );
    }
    if let (Some(path), Some(p)) = (&args.metrics, &metrics_profiler) {
        let snapshot = p.metrics().expect("metrics-only profiler").snapshot();
        if let Some(workers) = snapshot.gauges.get("pool_workers") {
            let jobs = snapshot.counters.get("pool_jobs").copied().unwrap_or(0);
            let chunks = snapshot.counters.get("pool_chunks").copied().unwrap_or(0);
            let worker_chunks = snapshot
                .counters
                .get("pool_worker_chunks")
                .copied()
                .unwrap_or(0);
            // worker_chunks / chunks < 1 means some chunks ran inline on
            // the submitter (pool undersubscribed); = 1 means every chunk
            // was claimed by a pool worker.
            let util = if chunks > 0 {
                worker_chunks as f64 / chunks as f64
            } else {
                0.0
            };
            println!(
                "pool: {workers} worker(s), {jobs} job(s), {chunks} chunk(s), \
                 {worker_chunks} claimed by workers ({:.1}% utilization)",
                100.0 * util
            );
        }
        let doc = Profile {
            kernel: w.name.to_string(),
            mode: "metrics".to_string(),
            metrics: snapshot,
            ..Profile::default()
        };
        match std::fs::write(path, doc.to_json().render()) {
            Ok(()) => println!("metrics: registry written to {path}"),
            Err(e) => {
                eprintln!("cannot write metrics file `{path}`: {e}");
                std::process::exit(2);
            }
        }
    }
    if args.emit_c {
        println!("\n--- generated HLS C ---\n{}", compiled.optimized_source);
    }
    if args.report {
        println!(
            "\n{}",
            report::render(
                &compiled.summary,
                &compiled.design,
                &compiled.estimate,
                framework.estimator().device()
            )
        );
    }
}

/// Number of random design points sampled when estimating each space's
/// statically-dead fraction. Fixed (with the seed) so the JSON report is
/// reproducible and diffable in CI.
const DEAD_SAMPLES: usize = 256;
const DEAD_SEED: u64 = 2018;

/// The `lint` subcommand: run every static analysis, print or save the
/// report, and return the process exit code (0 = no well-formedness
/// errors anywhere).
fn run_lint(args: &Args) -> i32 {
    let workloads: Vec<_> = all_workloads()
        .into_iter()
        .filter(|w| args.kernel.as_deref().is_none_or(|k| k == w.name))
        .collect();
    if workloads.is_empty() {
        eprintln!(
            "unknown kernel `{}` — try --list",
            args.kernel.as_deref().unwrap_or("")
        );
        return 2;
    }

    let estimator = Estimator::new();
    let mut kernels = Vec::new();
    let mut total_errors = 0u64;

    for w in &workloads {
        let generated = s2fa::compile_kernel(&w.spec).expect("workload compiles");
        let wellformed = verify_function(&generated.cfunc);
        let dataflow = dataflow_checks(&generated.cfunc, args.tasks);
        let summary = analysis::summarize(&generated.cfunc, args.tasks).expect("workload analyzes");
        let ds = DesignSpace::build(&summary);
        let oracle = Legality::new(&summary, &estimator);

        // Differential check: the structural rewrite of the (normalized)
        // performance seed must not introduce errors the generated
        // function did not have — neither well-formedness (`E1xx`) nor
        // dataflow (`E3xx`) errors.
        let mut perf = DesignConfig::perf_seed(&summary);
        perf.normalize(&summary);
        let (optimized, _) = apply_structural(&generated.cfunc, &perf);
        let mut introduced = new_errors(&wellformed, &verify_function(&optimized));
        introduced.extend(new_dataflow_errors(
            &dataflow,
            &dataflow_checks(&optimized, args.tasks),
        ));

        let seeds: Vec<(&str, DesignConfig)> = vec![
            ("perf", DesignConfig::perf_seed(&summary)),
            ("area", DesignConfig::area_seed(&summary)),
        ];
        let seed_docs: Vec<(String, Json)> = seeds
            .iter()
            .map(|(tag, cfg)| {
                let mut diags = oracle.check(cfg).diagnostics;
                diags.extend(factor_diagnostics(&generated.cfunc, cfg));
                let errors = diags
                    .iter()
                    .filter(|d| d.code.severity == Severity::Error)
                    .count();
                (
                    tag.to_string(),
                    Json::obj(vec![
                        ("errors", Json::n(errors as f64)),
                        ("warnings", Json::n((diags.len() - errors) as f64)),
                        (
                            "codes",
                            Json::Arr(diags.iter().map(|d| Json::s(d.code.code)).collect()),
                        ),
                    ]),
                )
            })
            .collect();

        let dead = ds.dead_fraction(ds.space(), &oracle, DEAD_SAMPLES, DEAD_SEED);
        let (wf_errors, wf_warnings) = wellformed.counts();
        let (df_all_errors, df_warnings) = dataflow.counts();
        // `E303` replication races are legality facts about the *search
        // space* (the kernel is sequentially correct; replicating the racy
        // loop is what would be nondeterministic) — like the seed
        // prescreen verdicts they are reported, not defects. Everything
        // else at error severity (uninit read, out-of-bounds index) is a
        // kernel defect and fails the lint run.
        let df_races = dataflow
            .diagnostics
            .iter()
            .filter(|d| d.code.code == "S2FA-E303")
            .count();
        let df_defects = df_all_errors - df_races;
        total_errors += (wf_errors + df_defects + introduced.len()) as u64;

        if args.format == Format::Text {
            println!("{}", wellformed.render());
            println!("{}", dataflow.render());
            if df_races > 0 {
                println!(
                    "  replication race(s) on {df_races} loop(s): sequentially sound, \
                     pruned from replication under --dataflow-prescreen"
                );
            }
            for d in &introduced {
                println!("  transform introduced: {d}");
            }
            for (tag, cfg) in &seeds {
                let r = oracle.check(cfg);
                let (e, warn) = r.counts();
                println!(
                    "  {tag} seed: {e} prescreen error(s), {warn} warning(s){}",
                    if e > 0 {
                        " [statically infeasible]"
                    } else {
                        ""
                    }
                );
            }
            println!(
                "  statically dead fraction: {:.1}% ({DEAD_SAMPLES} samples)\n",
                dead * 100.0
            );
        }

        kernels.push(Json::obj(vec![
            ("name", Json::s(w.name)),
            (
                "wellformed",
                Json::obj(vec![
                    ("errors", Json::n(wf_errors as f64)),
                    ("warnings", Json::n(wf_warnings as f64)),
                    (
                        "diagnostics",
                        Json::Arr(
                            wellformed
                                .diagnostics
                                .iter()
                                .map(|d| Json::s(d.to_string()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "dataflow",
                Json::obj(vec![
                    ("errors", Json::n(df_defects as f64)),
                    ("races", Json::n(df_races as f64)),
                    ("warnings", Json::n(df_warnings as f64)),
                    (
                        "diagnostics",
                        Json::Arr(
                            dataflow
                                .diagnostics
                                .iter()
                                .map(|d| Json::s(d.to_string()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            ("transform_new_errors", Json::n(introduced.len() as f64)),
            ("seeds", Json::Obj(seed_docs)),
            ("dead_fraction", Json::n(dead)),
        ]));
    }

    let doc = Json::obj(vec![
        ("schema", Json::s("s2fa-lint-report/v2")),
        ("kernels", Json::Arr(kernels)),
        ("total_errors", Json::n(total_errors as f64)),
        ("clean", Json::Bool(total_errors == 0)),
    ]);
    if args.format == Format::Json {
        print!("{}", doc.render());
    } else {
        println!(
            "lint: {} kernel(s), {} well-formedness error(s)",
            workloads.len(),
            total_errors
        );
    }
    if args.save {
        save("lint_report", &doc);
    }
    i32::from(total_errors > 0)
}

/// Batch geometry of the dedicated thread sweep: the satellite-bench
/// batch size at a handful of repetitions — enough spans to average the
/// per-batch spawn/join costs without turning the sweep into a benchmark.
const SWEEP_BATCH: usize = 512;
const SWEEP_BATCHES: usize = 4;
const SWEEP_SEED: u64 = 2018;

/// The `profile` subcommand: run the kernel's automatic flow under full
/// profiling, sweep the batch loop across thread counts, and write the
/// flight-recorder artifacts. Returns the process exit code.
fn run_profile(args: &Args) -> i32 {
    let Some(name) = &args.kernel else {
        eprintln!("{USAGE}");
        return 2;
    };
    let Some(w) = all_workloads().into_iter().find(|w| w.name == *name) else {
        eprintln!("unknown kernel `{name}` — try --list");
        return 2;
    };

    let mut options = S2faOptions {
        tasks_hint: args.tasks,
        ..S2faOptions::default()
    };
    options.dse.budget_minutes = args.budget;
    options.dse.prescreen = args.prescreen;
    options.dse.dataflow_prescreen = args.dataflow_prescreen;
    if let Some(t) = args.eval_threads {
        options.dse.eval_threads = t;
    }
    if let Some(c) = args.chunk {
        options.dse.eval_chunk = c;
    }

    // 1. The profiled pipeline run, with the dual-clock correlator
    // shadowing the virtual-minute event stream.
    let profiler = Profiler::enabled();
    let corr = Arc::new(CorrelatorSink::new(NullSink, profiler.clone()));
    let framework = S2fa::new(options)
        .with_profiler(profiler.clone())
        .with_trace_sink(corr.clone() as Arc<dyn TraceSink>);
    let compiled = framework.compile(&w.spec).expect("automatic flow succeeds");
    let spans = profiler.take_spans();
    if let Err(e) = verify_spans(&spans) {
        eprintln!("internal error: recorded span forest is ill-formed: {e}");
        return 1;
    }
    let correlation = correlate(&corr.samples(), &spans);
    let metrics = profiler.metrics().expect("enabled profiler").snapshot();

    // 2. The dedicated batch-loop sweep: same kernel, uncached engine (so
    // every eval pays the estimator walk), one ThreadedObjective per
    // thread count, batches of SWEEP_BATCH random points. Batches run
    // serially within a sweep, which is what lets `analyze_batch_loop`
    // associate worker spans to batches by containment.
    let summary = &compiled.summary;
    let ds = DesignSpace::build(summary);
    let est = Estimator::new();
    let mut batch_loop = Vec::new();
    for &threads in &args.threads {
        use rand::{rngs::SmallRng, SeedableRng};
        let sweep = Profiler::enabled();
        let mut engine = EvalEngine::new(summary, &est);
        engine.set_caching(false);
        let eval = |cfg: &Config| -> Measurement {
            let e = engine.evaluate(&ds.decode(cfg));
            Measurement {
                value: e.objective(),
                minutes: e.hls_minutes,
            }
        };
        let mut obj = ThreadedObjective::new(&eval, threads)
            .with_chunk(args.chunk.unwrap_or(0))
            .with_profiler(&sweep);
        let mut rng = SmallRng::seed_from_u64(SWEEP_SEED);
        for _ in 0..SWEEP_BATCHES {
            let configs: Vec<Config> = (0..SWEEP_BATCH)
                .map(|_| ds.space().random(&mut rng))
                .collect();
            std::hint::black_box(obj.measure_batch(&configs));
        }
        drop(obj);
        batch_loop.push(analyze_batch_loop(&sweep.take_spans(), threads as u64));
    }

    let profile = Profile {
        kernel: w.name.to_string(),
        mode: "full".to_string(),
        tree: aggregate_spans(&spans),
        metrics,
        correlation,
        batch_loop,
    };

    // 3. Validate against the checked-in schema before shipping anything.
    let schema = ObsJson::parse(include_str!("../../../../docs/profile.schema.json"))
        .expect("checked-in schema parses");
    let doc = profile.to_json();
    let violations = validate(&schema, &doc);
    if !violations.is_empty() {
        eprintln!("profile violates docs/profile.schema.json:");
        for v in &violations {
            eprintln!("  {v}");
        }
        return 1;
    }

    // 4. Artifacts: the full profile, the timing-free structure document
    // (CI's golden diff target), and folded stacks for flamegraphs.
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("cannot create results/: {e}");
        return 1;
    }
    let artifacts = [
        (format!("results/PROFILE_{}.json", w.name), doc.render()),
        (
            format!("results/PROFILE_structure_{}.json", w.name),
            profile.structure().render(),
        ),
        (
            format!("results/PROFILE_{}.folded", w.name),
            profile.folded(),
        ),
    ];
    for (path, contents) in &artifacts {
        if let Err(e) = std::fs::write(path, contents) {
            eprintln!("cannot write {path}: {e}");
            return 1;
        }
        println!("(profile artifact written to {path})");
    }

    println!("\n{}", profile.render_text());
    0
}

/// The `report` subcommand: re-render a previously written profile.
/// Returns the process exit code.
fn run_report(args: &Args) -> i32 {
    let path = match (&args.profile_path, &args.kernel) {
        (Some(p), _) => p.clone(),
        (None, Some(k)) => format!("results/PROFILE_{k}.json"),
        (None, None) => {
            eprintln!("{USAGE}");
            return 2;
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read `{path}`: {e}");
            return 2;
        }
    };
    let json = match ObsJson::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("`{path}` is not JSON: {e}");
            return 2;
        }
    };
    match Profile::from_json(&json) {
        Ok(profile) => {
            print!("{}", profile.render_text());
            0
        }
        Err(e) => {
            eprintln!("`{path}` is not a profile document: {e}");
            2
        }
    }
}

/// The `serve` subcommand: compile the manual designs, register them,
/// and play a multi-tenant request stream through the serving runtime.
fn run_serve(args: &Args) -> i32 {
    let framework = S2fa::new(S2faOptions::default());
    let registry = AcceleratorRegistry::new();
    let records_per_request = 16;
    let workloads: Vec<_> = match &args.kernel {
        Some(name) => {
            let Some(w) = all_workloads().into_iter().find(|w| w.name == name) else {
                eprintln!("unknown kernel `{name}` — try --list");
                return 2;
            };
            vec![w]
        }
        None => all_workloads(),
    };

    // Manual expert flow per workload (fast: no DSE), one shared registry.
    let mut request_ms = Vec::new();
    for w in &workloads {
        let generated = s2fa::compile_kernel(&w.manual_spec).expect("manual kernel compiles");
        let summary =
            analysis::summarize(&generated.cfunc, args.tasks).expect("manual kernel analyzes");
        let cfg = (w.manual_config)(&summary);
        let compiled = framework
            .compile_with_config(&w.manual_spec, &cfg)
            .expect("manual design synthesizes");
        let ms = compiled
            .accelerator
            .time_model
            .map(|m| m.batch_ms(records_per_request as u64))
            .unwrap_or(0.1);
        request_ms.push((
            compiled.accelerator.id.clone(),
            w.spec.clone(),
            w.gen_input,
            ms,
        ));
        registry.register(compiled.accelerator);
    }

    let config = ServingConfig {
        nodes: args.nodes,
        exec_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        ..ServingConfig::default()
    };
    let n = request_ms.len() as f64;
    let tenants: Vec<TenantSpec> = request_ms
        .iter()
        .enumerate()
        .map(|(i, (accel_id, fallback, gen_input, ms))| TenantSpec {
            name: accel_id.clone(),
            accel_id: accel_id.clone(),
            fallback: fallback.clone(),
            rate_per_ms: args.util * args.nodes as f64 / (n * ms.max(1e-6)),
            requests: args.requests,
            records_per_request,
            gen_input: *gen_input,
            seed: 0x5345_5256 ^ ((i as u64 + 1) * 0x9E37),
        })
        .collect();

    let runtime = ServingRuntime::new(&registry, config).expect("valid serving config");
    let outcome = match &args.trace {
        Some(path) => {
            let sink = JsonlSink::create(path).unwrap_or_else(|e| {
                eprintln!("cannot open trace file `{path}`: {e}");
                std::process::exit(2);
            });
            let out = runtime.serve(&tenants, &sink, &Profiler::disabled());
            sink.flush();
            out
        }
        None => runtime.serve(&tenants, &NullSink, &Profiler::disabled()),
    };
    let outcome = match outcome {
        Ok(o) => o,
        Err(e) => {
            eprintln!("serving failed: {e}");
            return 1;
        }
    };

    let stats = &outcome.stats;
    let hist = Histogram::new();
    for l in outcome.latencies_ms() {
        hist.record((l * 1000.0).round() as u64);
    }
    let snap = hist.snapshot();
    println!(
        "served {} tenants at {:.0}% of modelled capacity on {} nodes",
        tenants.len(),
        args.util * 100.0,
        args.nodes
    );
    println!(
        "requests: {} submitted, {} completed ({} accel / {} fallback), {} rejected",
        stats.submitted,
        stats.completed(),
        stats.completed_accel,
        stats.completed_fallback,
        stats.rejected
    );
    println!(
        "throughput: {:.1} req/s over {:.2} virtual ms",
        if stats.makespan_ms > 0.0 {
            stats.completed() as f64 / stats.makespan_ms * 1000.0
        } else {
            0.0
        },
        stats.makespan_ms
    );
    println!(
        "latency: p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms, max {:.3} ms",
        snap.p50 as f64 / 1000.0,
        snap.p90 as f64 / 1000.0,
        snap.p99 as f64 / 1000.0,
        snap.max as f64 / 1000.0
    );
    println!(
        "batching: {} batches, mean size {:.2}, max queue depth {}",
        stats.batches,
        stats.mean_batch_size(),
        stats.max_queue_depth
    );
    if stats.fallback_fraction() > 0.0 {
        println!(
            "fallback fraction: {:.1}%",
            stats.fallback_fraction() * 100.0
        );
    }
    if let Some(path) = &args.trace {
        println!("trace: serving events appended to {path}");
    }
    0
}
