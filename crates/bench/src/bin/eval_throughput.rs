//! `eval_throughput` — evals/sec of the evaluation engine across its
//! operating regimes, written to `results/BENCH_eval_throughput.json`.
//!
//! ```text
//! cargo run --release -p s2fa-bench --bin eval_throughput [-- --smoke]
//! ```
//!
//! The headline numbers are the **memoization speedup** (warm-cache
//! evals/sec over uncached evals/sec — the steady-state win the DSE
//! driver sees when partitions, seeds, and the probe pass revisit
//! canonical design points; the raw-fingerprint alias tier answers warm
//! repeats before any normalization work) and the **incremental
//! speedup** (subtree-cost replay vs the full whole-kernel walk on a
//! stream of single-factor neighbor mutations — the cache-miss path the
//! tuner's mutation techniques actually exercise). Around them:
//!
//! * **Thread sweep with per-stage attribution** — the pooled batch
//!   path at 1/2/4/8 threads on the persistent worker pool, each count
//!   paired with the profiled breakdown
//!   (submit/estimate/wait/merge/idle) from [`analyze_batch_loop`] and
//!   a scaling efficiency normalized to `min(threads, host_cores)` —
//!   on a 1-core host every thread count above 1 is time-slicing the
//!   same core, and the efficiency column says so instead of letting
//!   the raw ratio look like a regression.
//! * **Profiling overhead** — the instrumented serial batch path with
//!   the disabled profiler vs a plain uninstrumented loop over the same
//!   closure (the disabled path must stay under 2% of it), and the
//!   fully enabled profiler for the worst case.
//! * **Sink overhead** — JSONL flight recording of cache activity on a
//!   512-point-batch run: one event per lookup (the pre-batching
//!   behavior, emulated) vs one batched `cache_stats` delta per batch.
//!
//! `--smoke` runs only a 1-thread vs 4-thread sweep and enforces the CI
//! scaling floor (4-thread rate ≥ 1.5× 1-thread) when the host actually
//! has ≥ 4 cores; on smaller hosts it prints a skip notice and passes.

use rand::{rngs::SmallRng, SeedableRng};
use s2fa::compile_kernel;
use s2fa_bench::results::{self, Json};
use s2fa_dse::{DesignSpace, EvalEngine};
use s2fa_hlsir::{
    analysis, Access, BufferDir, BufferInfo, CarriedDep, KernelSummary, LoopId, LoopInfo, OpCounts,
    Stride,
};
use s2fa_hlssim::Estimator;
use s2fa_obs::{analyze_batch_loop, BatchLoopProfile, Profiler};
use s2fa_trace::{Event, JsonlSink, TraceSink};
use s2fa_tuner::{Config, Measurement, Objective, ThreadedObjective};
use s2fa_workloads::sw;
use std::sync::Arc;
use std::time::Instant;

const BATCH: usize = 512;
const ROUNDS: usize = 40;
const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Batches in the sink-overhead comparison (each of size [`BATCH`]).
const SINK_BATCHES: usize = 64;
/// Distinct neighbor-mutation points in the incremental regime.
const CHAIN: usize = 4096;
/// Warm-cache evals/sec before the raw-fingerprint alias tier landed
/// (the committed `BENCH_eval_throughput.json` of the previous run) —
/// the ≥10x warm target is measured against this.
const PREV_WARM: f64 = 969_389.0;
/// CI smoke floor: 4-thread rate must beat 1-thread by this factor
/// (enforced only when the host has ≥ 4 cores).
const SMOKE_FLOOR: f64 = 1.5;

/// Real available parallelism of the host, recorded in the report
/// header and used to normalize the thread sweep. Resolution order:
/// the `S2FA_HOST_CORES` override (CI pinning / container limits the
/// runtime can't see), then `available_parallelism`, then a raw
/// `/proc/cpuinfo` processor count, then 1.
fn host_cores() -> usize {
    if let Ok(v) = std::env::var("S2FA_HOST_CORES") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    if let Ok(n) = std::thread::available_parallelism() {
        return n.get();
    }
    std::fs::read_to_string("/proc/cpuinfo").map_or(1, |s| {
        s.lines()
            .filter(|l| l.starts_with("processor"))
            .count()
            .max(1)
    })
}

/// A 7-level synthetic loop nest for the second incremental regime.
/// The S-W kernel bottoms out at 3 loops, where the per-subtree
/// bookkeeping (keying, frame recording, store probes) is on the same
/// order as the tiny walks it can skip; a deeper nest is the shape the
/// subtree replay is built for — a single-knob mutation invalidates
/// only the subtrees on the path to the changed loop, and everything
/// below the divergence point replays.
fn deep_summary() -> KernelSummary {
    const DEPTH: u32 = 7;
    let trips: [u32; DEPTH as usize] = [256, 4, 8, 4, 8, 4, 32];
    let mut loops = Vec::new();
    let mut buffers = Vec::new();
    for i in 0..DEPTH {
        let mut ops = OpCounts::new();
        ops.fadd = 1 + i % 3;
        ops.fmul = 1 + i % 2;
        ops.int_alu = 2;
        ops.mem_read = 1;
        if i == 0 {
            ops.mem_write = 1;
        }
        let name = format!("d{i}");
        loops.push(LoopInfo {
            id: LoopId(i),
            var: format!("v{i}"),
            trip_count: trips[i as usize],
            depth: i,
            parent: (i > 0).then(|| LoopId(i - 1)),
            children: if i + 1 < DEPTH {
                vec![LoopId(i + 1)]
            } else {
                vec![]
            },
            body_ops: ops,
            accesses: vec![Access {
                buffer: name.clone(),
                write: false,
                stride: Stride::Unit,
            }],
            carried: (i == DEPTH - 1).then(|| {
                let mut chain = OpCounts::new();
                chain.fadd = 1;
                CarriedDep {
                    via: "acc".into(),
                    chain,
                    reducible: true,
                }
            }),
        });
        buffers.push(BufferInfo {
            name,
            elem_bits: 32,
            len: 64,
            dir: BufferDir::In,
            broadcast: false,
        });
    }
    buffers.push(BufferInfo {
        name: "out".into(),
        elem_bits: 32,
        len: 1,
        dir: BufferDir::Out,
        broadcast: false,
    });
    KernelSummary {
        name: "deep_nest".into(),
        loops,
        buffers,
        task_loop: LoopId(0),
        tasks_hint: 256,
        dataflow: None,
    }
}

fn evals_per_sec(mut run_batch: impl FnMut()) -> f64 {
    // one untimed warm-up round so lazy setup (the persistent worker
    // pool, cache fills for the warm regime) stays out of the measurement
    run_batch();
    // Best-of-N short windows over the same total work: this host is a
    // shared 1-core container, and a single long window folds other
    // tenants' scheduler preemptions into the rate. The fastest window
    // is the standard shared-host estimator of the code's own
    // throughput (criterion reports minima for the same reason).
    const WINDOWS: usize = 8;
    const PER: usize = ROUNDS / WINDOWS;
    let mut best = 0.0f64;
    for _ in 0..WINDOWS {
        let t0 = Instant::now();
        for _ in 0..PER {
            run_batch();
        }
        best = best.max((BATCH * PER) as f64 / t0.elapsed().as_secs_f64());
    }
    best
}

fn batch_loop_json(p: &BatchLoopProfile) -> Json {
    let n = |v: u64| Json::n(v as f64);
    Json::obj(vec![
        ("batches", n(p.batches)),
        ("wall_ns", n(p.wall_ns)),
        ("submit_ns", n(p.submit_ns)),
        ("estimate_ns", n(p.estimate_ns)),
        ("wait_ns", n(p.wait_ns)),
        ("merge_ns", n(p.merge_ns)),
        ("idle_ns", n(p.idle_ns)),
        ("attributed_fraction", Json::n(p.attributed_fraction())),
    ])
}

/// `--smoke`: the CI scaling gate. Fast (few rounds), no JSON artifact.
fn run_smoke() {
    let cores = host_cores();
    let w = sw::workload();
    let g = compile_kernel(&w.spec).expect("compiles");
    let s = analysis::summarize(&g.cfunc, 1024).expect("analyzes");
    let ds = DesignSpace::build(&s);
    let est = Estimator::new();
    let mut rng = SmallRng::seed_from_u64(42);
    let configs: Vec<Config> = (0..BATCH).map(|_| ds.space().random(&mut rng)).collect();
    let mut engine = EvalEngine::new(&s, &est);
    engine.set_caching(false);
    let eval = |cfg: &Config| -> Measurement {
        let e = engine.evaluate(&ds.decode(cfg));
        Measurement {
            value: e.objective(),
            minutes: e.hls_minutes,
        }
    };
    const SMOKE_ROUNDS: usize = 10;
    let rate_at = |threads: usize| -> f64 {
        let mut obj = ThreadedObjective::new(&eval, threads);
        std::hint::black_box(obj.measure_batch(&configs)); // warm-up
        let t0 = Instant::now();
        for _ in 0..SMOKE_ROUNDS {
            std::hint::black_box(obj.measure_batch(&configs));
        }
        (BATCH * SMOKE_ROUNDS) as f64 / t0.elapsed().as_secs_f64()
    };
    let r1 = rate_at(1);
    let r4 = rate_at(4);
    let ratio = r4 / r1.max(1e-9);
    println!("bench-smoke (host: {cores} cores):");
    println!("  1 thread : {r1:>12.0} evals/sec");
    println!("  4 threads: {r4:>12.0} evals/sec   ({ratio:.2}x)");
    if cores >= 4 {
        if ratio < SMOKE_FLOOR {
            eprintln!(
                "FAIL: 4-thread rate is {ratio:.2}x the 1-thread rate \
                 (floor {SMOKE_FLOOR}x on a {cores}-core host)"
            );
            std::process::exit(1);
        }
        println!("  PASS: scaling {ratio:.2}x >= {SMOKE_FLOOR}x floor");
    } else {
        println!(
            "  SKIP: scaling floor needs >= 4 host cores, found {cores} \
             (thread counts above the core count just time-slice)"
        );
    }
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        run_smoke();
        return;
    }
    let cores = host_cores();
    let w = sw::workload();
    let g = compile_kernel(&w.spec).expect("compiles");
    let s = analysis::summarize(&g.cfunc, 1024).expect("analyzes");
    let ds = DesignSpace::build(&s);
    let est = Estimator::new();
    let mut rng = SmallRng::seed_from_u64(42);
    let configs: Vec<Config> = (0..BATCH).map(|_| ds.space().random(&mut rng)).collect();
    // the serial regimes measure the engine itself, on pre-decoded points
    let designs: Vec<_> = configs.iter().map(|c| ds.decode(c)).collect();

    println!(
        "evaluation-engine throughput (S-W design space, batch of {BATCH}, host: {cores} cores):"
    );

    // Uncached serial: the pre-engine baseline (full estimator walk per
    // eval, no caches of any tier).
    let mut uncached_engine = EvalEngine::new(&s, &est);
    uncached_engine.set_caching(false);
    uncached_engine.set_incremental(false);
    let uncached = evals_per_sec(|| {
        for dc in &designs {
            std::hint::black_box(uncached_engine.evaluate(dc));
        }
    });

    // Warm cache: the DSE steady state. After the warm-up round every
    // repeat is a raw-fingerprint alias hit — no clone, no
    // normalization, no canonical probe.
    let warm_engine = EvalEngine::new(&s, &est);
    let warm = evals_per_sec(|| {
        for dc in &designs {
            std::hint::black_box(warm_engine.evaluate(dc));
        }
    });
    let warm_stats = warm_engine.cache_stats();

    // Incremental re-estimation on the cache-miss path: a chain of
    // single-factor neighbor mutations (every point distinct from its
    // predecessor by one knob — the tuner's mutation techniques) walked
    // once by a full-walk engine and once by the subtree-replay engine.
    // Both have the estimate cache on, so the comparison isolates what
    // happens on a miss.
    let chain: Vec<_> = {
        let mut cur = ds.space().random(&mut rng);
        (0..CHAIN)
            .map(|_| {
                ds.space().mutate_one(&mut cur, &mut rng);
                ds.decode(&cur)
            })
            .collect()
    };
    let chain_rate = |engine: &EvalEngine| -> f64 {
        let t0 = Instant::now();
        for dc in &chain {
            std::hint::black_box(engine.evaluate(dc));
        }
        chain.len() as f64 / t0.elapsed().as_secs_f64()
    };
    let mut full_walk_engine = EvalEngine::new(&s, &est);
    full_walk_engine.set_incremental(false);
    let chain_full = chain_rate(&full_walk_engine);
    let incr_engine = EvalEngine::new(&s, &est);
    let chain_incr = chain_rate(&incr_engine);
    let incremental_speedup = chain_incr / chain_full.max(1e-9);
    let subtree = incr_engine.subtree_stats();

    // The same mutation-chain comparison on a 7-level synthetic nest:
    // the regime the subtree replay targets (deep nests where a
    // single-knob mutation leaves most of the tree's walk reusable).
    let deep = deep_summary();
    let ds_deep = DesignSpace::build(&deep);
    let deep_chain: Vec<_> = {
        let mut cur = ds_deep.space().random(&mut rng);
        (0..CHAIN)
            .map(|_| {
                ds_deep.space().mutate_one(&mut cur, &mut rng);
                ds_deep.decode(&cur)
            })
            .collect()
    };
    let deep_rate = |engine: &EvalEngine| -> f64 {
        let t0 = Instant::now();
        for dc in &deep_chain {
            std::hint::black_box(engine.evaluate(dc));
        }
        deep_chain.len() as f64 / t0.elapsed().as_secs_f64()
    };
    let mut deep_full_engine = EvalEngine::new(&deep, &est);
    deep_full_engine.set_incremental(false);
    let deep_full = deep_rate(&deep_full_engine);
    let deep_incr_engine = EvalEngine::new(&deep, &est);
    let deep_incr = deep_rate(&deep_incr_engine);
    let deep_speedup = deep_incr / deep_full.max(1e-9);
    let deep_subtree = deep_incr_engine.subtree_stats();

    // Batch-path thread sweep on the persistent worker pool. Each count
    // is measured twice: a clean timing pass with the disabled profiler
    // (the throughput number; the pool persists across rounds inside
    // one objective) and a profiled pass whose spans yield the
    // per-stage attribution.
    let eval = |cfg: &Config| -> Measurement {
        let e = uncached_engine.evaluate(&ds.decode(cfg));
        Measurement {
            value: e.objective(),
            minutes: e.hls_minutes,
        }
    };
    let mut threaded: Vec<(usize, f64, BatchLoopProfile)> = Vec::new();
    for threads in THREADS {
        let mut obj = ThreadedObjective::new(&eval, threads);
        let rate = evals_per_sec(|| {
            std::hint::black_box(obj.measure_batch(&configs));
        });
        let profiler = Profiler::enabled();
        let mut obj = ThreadedObjective::new(&eval, threads).with_profiler(&profiler);
        for _ in 0..4 {
            std::hint::black_box(obj.measure_batch(&configs));
        }
        drop(obj);
        let stages = analyze_batch_loop(&profiler.take_spans(), threads as u64);
        threaded.push((threads, rate, stages));
    }

    // Profiling overhead on the serial batch path: a plain map-collect
    // over the same closure (exactly the work the uninstrumented serial
    // path did) vs the instrumented path with the disabled profiler
    // (must be within 2%) vs fully enabled.
    let plain = evals_per_sec(|| {
        let out: Vec<Measurement> = configs.iter().map(eval).collect();
        std::hint::black_box(out);
    });
    let mut obj = ThreadedObjective::new(&eval, 1);
    let disabled = evals_per_sec(|| {
        std::hint::black_box(obj.measure_batch(&configs));
    });
    let enabled_profiler = Profiler::enabled();
    let mut obj = ThreadedObjective::new(&eval, 1).with_profiler(&enabled_profiler);
    let enabled = evals_per_sec(|| {
        std::hint::black_box(obj.measure_batch(&configs));
    });
    drop(obj);
    let disabled_overhead_pct = 100.0 * (plain / disabled - 1.0);
    let enabled_overhead_pct = 100.0 * (plain / enabled - 1.0);

    // Sink overhead on a 512-point-batch run: per-lookup emission (one
    // JSONL event per evaluate, the pre-batching behavior) vs one
    // cache_stats delta flushed per batch.
    let tmp = std::env::temp_dir();
    let per_lookup_path = tmp.join("s2fa_bench_per_lookup.jsonl");
    let batched_path = tmp.join("s2fa_bench_batched.jsonl");
    let sink_run = |per_lookup: bool, path: &std::path::Path| -> (f64, u64) {
        let sink = Arc::new(JsonlSink::create(path).expect("temp jsonl opens"));
        let mut engine = EvalEngine::new(&s, &est);
        engine.set_sink(Some(sink.clone() as Arc<dyn TraceSink>));
        let t0 = Instant::now();
        for _ in 0..SINK_BATCHES {
            for dc in &designs {
                std::hint::black_box(engine.evaluate(dc));
                if per_lookup {
                    // what every lookup used to cost the sink
                    sink.emit(&Event::CacheStats {
                        hits: 1,
                        misses: 0,
                        overwrites: 0,
                    });
                }
            }
            if !per_lookup {
                engine.flush_cache_stats();
            }
        }
        sink.flush();
        let rate = (SINK_BATCHES * BATCH) as f64 / t0.elapsed().as_secs_f64();
        (rate, sink.emitted())
    };
    let (per_lookup_rate, per_lookup_events) = sink_run(true, &per_lookup_path);
    let (batched_rate, batched_events) = sink_run(false, &batched_path);
    let _ = std::fs::remove_file(&per_lookup_path);
    let _ = std::fs::remove_file(&batched_path);

    let cache_speedup = warm / uncached;
    let warm_speedup_vs_prev = warm / PREV_WARM;
    let base_rate = threaded[0].1;
    let thread_speedup = threaded.last().unwrap().1 / base_rate;
    // Efficiency against what the host can physically deliver: a
    // t-thread run on a c-core host has min(t, c) cores of capacity.
    let efficiency =
        |t: usize, r: f64| -> f64 { r / base_rate.max(1e-9) / t.min(cores).max(1) as f64 };

    println!("  uncached serial   : {uncached:>12.0} evals/sec");
    println!("  warm cache (alias): {warm:>12.0} evals/sec   ({cache_speedup:.1}x; {warm_speedup_vs_prev:.1}x vs pre-alias)");
    println!(
        "  incremental chain : {chain_incr:>12.0} evals/sec   (full walk {chain_full:.0}, {incremental_speedup:.2}x; subtree hits {} / misses {})",
        subtree.hits, subtree.misses
    );
    println!(
        "  incremental deep  : {deep_incr:>12.0} evals/sec   (full walk {deep_full:.0}, {deep_speedup:.2}x; subtree hits {} / misses {})",
        deep_subtree.hits, deep_subtree.misses
    );
    for (t, r, stages) in &threaded {
        println!(
            "  pooled x{t:<2}        : {r:>12.0} evals/sec   (eff {:.2} submit {:.0}% est {:.0}% attr {:.0}%)",
            efficiency(*t, *r),
            100.0 * stages.submit_ns as f64 / stages.wall_ns.max(1) as f64,
            100.0 * stages.estimate_ns as f64 / stages.wall_ns.max(1) as f64,
            100.0 * stages.attributed_fraction(),
        );
    }
    println!(
        "  warm-cache hit rate: {:.1}% ({} hits / {} lookups)",
        100.0 * warm_stats.hit_rate(),
        warm_stats.hits,
        warm_stats.hits + warm_stats.misses
    );
    println!(
        "  profiling overhead : disabled {disabled_overhead_pct:+.2}%  enabled {enabled_overhead_pct:+.2}%"
    );
    println!(
        "  sink overhead      : per-lookup {per_lookup_rate:>10.0} evals/sec ({per_lookup_events} events)  \
batched {batched_rate:>10.0} evals/sec ({batched_events} events)"
    );

    let doc = Json::obj(vec![
        ("kernel", Json::s("S-W")),
        ("batch", Json::n(BATCH as f64)),
        ("rounds", Json::n(ROUNDS as f64)),
        ("host_cores", Json::n(cores as f64)),
        ("uncached_evals_per_sec", Json::n(uncached)),
        ("warm_cache_evals_per_sec", Json::n(warm)),
        ("cache_speedup", Json::n(cache_speedup)),
        ("prev_warm_evals_per_sec", Json::n(PREV_WARM)),
        ("warm_speedup_vs_prev", Json::n(warm_speedup_vs_prev)),
        (
            "incremental",
            Json::obj(vec![
                ("chain_len", Json::n(CHAIN as f64)),
                ("full_walk_evals_per_sec", Json::n(chain_full)),
                ("incremental_evals_per_sec", Json::n(chain_incr)),
                ("incremental_speedup", Json::n(incremental_speedup)),
                ("subtree_hits", Json::n(subtree.hits as f64)),
                ("subtree_misses", Json::n(subtree.misses as f64)),
                ("subtree_entries", Json::n(subtree.entries as f64)),
                (
                    "deep_nest",
                    Json::obj(vec![
                        ("levels", Json::n(7.0)),
                        ("full_walk_evals_per_sec", Json::n(deep_full)),
                        ("incremental_evals_per_sec", Json::n(deep_incr)),
                        ("incremental_speedup", Json::n(deep_speedup)),
                        ("subtree_hits", Json::n(deep_subtree.hits as f64)),
                        ("subtree_misses", Json::n(deep_subtree.misses as f64)),
                    ]),
                ),
            ]),
        ),
        (
            "threaded_evals_per_sec",
            Json::Arr(
                threaded
                    .iter()
                    .map(|(t, r, stages)| {
                        Json::obj(vec![
                            ("threads", Json::n(*t as f64)),
                            ("evals_per_sec", Json::n(*r)),
                            ("efficiency_vs_cores", Json::n(efficiency(*t, *r))),
                            ("stages", batch_loop_json(stages)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("thread_speedup", Json::n(thread_speedup)),
        ("cache_hits", Json::n(warm_stats.hits as f64)),
        (
            "cache_lookups",
            Json::n((warm_stats.hits + warm_stats.misses) as f64),
        ),
        (
            "profiling",
            Json::obj(vec![
                ("plain_evals_per_sec", Json::n(plain)),
                ("disabled_evals_per_sec", Json::n(disabled)),
                ("enabled_evals_per_sec", Json::n(enabled)),
                ("disabled_overhead_pct", Json::n(disabled_overhead_pct)),
                ("enabled_overhead_pct", Json::n(enabled_overhead_pct)),
                (
                    "disabled_within_2pct",
                    Json::Bool(disabled_overhead_pct < 2.0),
                ),
            ]),
        ),
        (
            "sink_overhead",
            Json::obj(vec![
                ("batches", Json::n(SINK_BATCHES as f64)),
                ("per_lookup_evals_per_sec", Json::n(per_lookup_rate)),
                ("per_lookup_events", Json::n(per_lookup_events as f64)),
                ("batched_evals_per_sec", Json::n(batched_rate)),
                ("batched_events", Json::n(batched_events as f64)),
                (
                    "batched_speedup",
                    Json::n(batched_rate / per_lookup_rate.max(1e-9)),
                ),
            ]),
        ),
        ("meets_2x_target", Json::Bool(cache_speedup >= 2.0)),
        (
            "meets_10x_warm_target",
            Json::Bool(warm_speedup_vs_prev >= 10.0),
        ),
    ]);
    results::save("BENCH_eval_throughput", &doc);

    if cache_speedup < 2.0 {
        eprintln!("warning: memoization speedup {cache_speedup:.2}x below the 2x target");
    }
    if warm_speedup_vs_prev < 10.0 {
        eprintln!(
            "warning: warm-cache speedup vs pre-alias {warm_speedup_vs_prev:.2}x below the 10x target"
        );
    }
    if disabled_overhead_pct >= 2.0 {
        eprintln!(
            "warning: disabled-profiler overhead {disabled_overhead_pct:.2}% exceeds the 2% budget"
        );
    }
}
