//! `eval_throughput` — evals/sec of the evaluation engine across its
//! operating regimes, written to `results/BENCH_eval_throughput.json`.
//!
//! ```text
//! cargo run --release -p s2fa-bench --bin eval_throughput
//! ```
//!
//! The headline number is the **memoization speedup**: evals/sec with a
//! warm cache over evals/sec with caching disabled — the steady-state win
//! the DSE driver sees when partitions, seeds, and the probe pass revisit
//! canonical design points. Around it, three observability measurements:
//!
//! * **Thread sweep with per-stage attribution** — the batch path at
//!   1/2/4/8 threads, each count paired with the profiled breakdown
//!   (spawn/dispatch/estimate/collect/merge/idle) from
//!   [`analyze_batch_loop`], so the scaling number and its explanation
//!   ship together.
//! * **Profiling overhead** — the instrumented serial batch path with the
//!   disabled profiler vs a plain uninstrumented loop over the same
//!   closure (the disabled path must stay under 2% of it), and the fully
//!   enabled profiler for the worst case.
//! * **Sink overhead** — JSONL flight recording of cache activity on a
//!   512-point-batch run: one event per lookup (the pre-batching
//!   behavior, emulated) vs one batched `cache_stats` delta per batch.

use rand::{rngs::SmallRng, SeedableRng};
use s2fa::compile_kernel;
use s2fa_bench::results::{self, Json};
use s2fa_dse::{DesignSpace, EvalEngine};
use s2fa_hlsir::analysis;
use s2fa_hlssim::Estimator;
use s2fa_obs::{analyze_batch_loop, BatchLoopProfile, Profiler};
use s2fa_trace::{Event, JsonlSink, TraceSink};
use s2fa_tuner::{Config, Measurement, Objective, ThreadedObjective};
use s2fa_workloads::sw;
use std::sync::Arc;
use std::time::Instant;

const BATCH: usize = 512;
const ROUNDS: usize = 40;
const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Batches in the sink-overhead comparison (each of size [`BATCH`]).
const SINK_BATCHES: usize = 64;

fn evals_per_sec(mut run_batch: impl FnMut()) -> f64 {
    // one untimed warm-up round so lazy setup (thread pools, cache fills
    // for the warm regime) stays out of the measurement
    run_batch();
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        run_batch();
    }
    (BATCH * ROUNDS) as f64 / t0.elapsed().as_secs_f64()
}

fn batch_loop_json(p: &BatchLoopProfile) -> Json {
    let n = |v: u64| Json::n(v as f64);
    Json::obj(vec![
        ("batches", n(p.batches)),
        ("wall_ns", n(p.wall_ns)),
        ("spawn_ns", n(p.spawn_ns)),
        ("dispatch_ns", n(p.dispatch_ns)),
        ("estimate_ns", n(p.estimate_ns)),
        ("collect_ns", n(p.collect_ns)),
        ("merge_ns", n(p.merge_ns)),
        ("idle_ns", n(p.idle_ns)),
        ("attributed_fraction", Json::n(p.attributed_fraction())),
    ])
}

fn main() {
    let w = sw::workload();
    let g = compile_kernel(&w.spec).expect("compiles");
    let s = analysis::summarize(&g.cfunc, 1024).expect("analyzes");
    let ds = DesignSpace::build(&s);
    let est = Estimator::new();
    let mut rng = SmallRng::seed_from_u64(42);
    let configs: Vec<Config> = (0..BATCH).map(|_| ds.space().random(&mut rng)).collect();
    // the serial regimes measure the engine itself, on pre-decoded points
    let designs: Vec<_> = configs.iter().map(|c| ds.decode(c)).collect();

    // Uncached serial: the pre-engine baseline (estimator walk per eval).
    let mut uncached_engine = EvalEngine::new(&s, &est);
    uncached_engine.set_caching(false);
    let uncached = evals_per_sec(|| {
        for dc in &designs {
            std::hint::black_box(uncached_engine.evaluate(dc));
        }
    });

    // Warm cache: the DSE steady state (every eval a shard lookup).
    let warm_engine = EvalEngine::new(&s, &est);
    let warm = evals_per_sec(|| {
        for dc in &designs {
            std::hint::black_box(warm_engine.evaluate(dc));
        }
    });
    let warm_stats = warm_engine.cache_stats();

    // Batch-path thread sweep. Each count is measured twice: a clean
    // timing pass with the disabled profiler (the throughput number) and
    // a profiled pass whose spans yield the per-stage attribution.
    let eval = |cfg: &Config| -> Measurement {
        let e = uncached_engine.evaluate(&ds.decode(cfg));
        Measurement {
            value: e.objective(),
            minutes: e.hls_minutes,
        }
    };
    let mut threaded: Vec<(usize, f64, BatchLoopProfile)> = Vec::new();
    for threads in THREADS {
        let mut obj = ThreadedObjective::new(&eval, threads);
        let rate = evals_per_sec(|| {
            std::hint::black_box(obj.measure_batch(&configs));
        });
        let profiler = Profiler::enabled();
        let mut obj = ThreadedObjective::new(&eval, threads).with_profiler(&profiler);
        for _ in 0..4 {
            std::hint::black_box(obj.measure_batch(&configs));
        }
        drop(obj);
        let stages = analyze_batch_loop(&profiler.take_spans(), threads as u64);
        threaded.push((threads, rate, stages));
    }

    // Profiling overhead on the serial batch path: a plain map-collect
    // over the same closure (exactly the work the uninstrumented serial
    // path did) vs the instrumented path with the disabled profiler
    // (must be within 2%) vs fully enabled.
    let plain = evals_per_sec(|| {
        let out: Vec<Measurement> = configs.iter().map(eval).collect();
        std::hint::black_box(out);
    });
    let mut obj = ThreadedObjective::new(&eval, 1);
    let disabled = evals_per_sec(|| {
        std::hint::black_box(obj.measure_batch(&configs));
    });
    let enabled_profiler = Profiler::enabled();
    let mut obj = ThreadedObjective::new(&eval, 1).with_profiler(&enabled_profiler);
    let enabled = evals_per_sec(|| {
        std::hint::black_box(obj.measure_batch(&configs));
    });
    drop(obj);
    let disabled_overhead_pct = 100.0 * (plain / disabled - 1.0);
    let enabled_overhead_pct = 100.0 * (plain / enabled - 1.0);

    // Sink overhead on a 512-point-batch run: per-lookup emission (one
    // JSONL event per evaluate, the pre-batching behavior) vs one
    // cache_stats delta flushed per batch.
    let tmp = std::env::temp_dir();
    let per_lookup_path = tmp.join("s2fa_bench_per_lookup.jsonl");
    let batched_path = tmp.join("s2fa_bench_batched.jsonl");
    let sink_run = |per_lookup: bool, path: &std::path::Path| -> (f64, u64) {
        let sink = Arc::new(JsonlSink::create(path).expect("temp jsonl opens"));
        let mut engine = EvalEngine::new(&s, &est);
        engine.set_sink(Some(sink.clone() as Arc<dyn TraceSink>));
        let t0 = Instant::now();
        for _ in 0..SINK_BATCHES {
            for dc in &designs {
                std::hint::black_box(engine.evaluate(dc));
                if per_lookup {
                    // what every lookup used to cost the sink
                    sink.emit(&Event::CacheStats {
                        hits: 1,
                        misses: 0,
                        overwrites: 0,
                    });
                }
            }
            if !per_lookup {
                engine.flush_cache_stats();
            }
        }
        sink.flush();
        let rate = (SINK_BATCHES * BATCH) as f64 / t0.elapsed().as_secs_f64();
        (rate, sink.emitted())
    };
    let (per_lookup_rate, per_lookup_events) = sink_run(true, &per_lookup_path);
    let (batched_rate, batched_events) = sink_run(false, &batched_path);
    let _ = std::fs::remove_file(&per_lookup_path);
    let _ = std::fs::remove_file(&batched_path);

    let cache_speedup = warm / uncached;
    let thread_speedup = threaded.last().unwrap().1 / threaded[0].1;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("evaluation-engine throughput (S-W design space, batch of {BATCH}):");
    println!("  uncached serial   : {uncached:>12.0} evals/sec");
    println!("  warm cache        : {warm:>12.0} evals/sec   ({cache_speedup:.1}x)");
    for (t, r, stages) in &threaded {
        println!(
            "  threaded x{t:<2}      : {r:>12.0} evals/sec   (spawn {:.0}% est {:.0}% attr {:.0}%)",
            100.0 * stages.spawn_ns as f64 / stages.wall_ns.max(1) as f64,
            100.0 * stages.estimate_ns as f64 / stages.wall_ns.max(1) as f64,
            100.0 * stages.attributed_fraction(),
        );
    }
    println!("  host cores        : {cores}");
    println!(
        "  warm-cache hit rate: {:.1}% ({} hits / {} lookups)",
        100.0 * warm_stats.hit_rate(),
        warm_stats.hits,
        warm_stats.hits + warm_stats.misses
    );
    println!(
        "  profiling overhead : disabled {disabled_overhead_pct:+.2}%  enabled {enabled_overhead_pct:+.2}%"
    );
    println!(
        "  sink overhead      : per-lookup {per_lookup_rate:>10.0} evals/sec ({per_lookup_events} events)  \
batched {batched_rate:>10.0} evals/sec ({batched_events} events)"
    );

    let doc = Json::obj(vec![
        ("kernel", Json::s("S-W")),
        ("batch", Json::n(BATCH as f64)),
        ("rounds", Json::n(ROUNDS as f64)),
        ("host_cores", Json::n(cores as f64)),
        ("uncached_evals_per_sec", Json::n(uncached)),
        ("warm_cache_evals_per_sec", Json::n(warm)),
        ("cache_speedup", Json::n(cache_speedup)),
        (
            "threaded_evals_per_sec",
            Json::Arr(
                threaded
                    .iter()
                    .map(|(t, r, stages)| {
                        Json::obj(vec![
                            ("threads", Json::n(*t as f64)),
                            ("evals_per_sec", Json::n(*r)),
                            ("stages", batch_loop_json(stages)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("thread_speedup", Json::n(thread_speedup)),
        ("cache_hits", Json::n(warm_stats.hits as f64)),
        (
            "cache_lookups",
            Json::n((warm_stats.hits + warm_stats.misses) as f64),
        ),
        (
            "profiling",
            Json::obj(vec![
                ("plain_evals_per_sec", Json::n(plain)),
                ("disabled_evals_per_sec", Json::n(disabled)),
                ("enabled_evals_per_sec", Json::n(enabled)),
                ("disabled_overhead_pct", Json::n(disabled_overhead_pct)),
                ("enabled_overhead_pct", Json::n(enabled_overhead_pct)),
                (
                    "disabled_within_2pct",
                    Json::Bool(disabled_overhead_pct < 2.0),
                ),
            ]),
        ),
        (
            "sink_overhead",
            Json::obj(vec![
                ("batches", Json::n(SINK_BATCHES as f64)),
                ("per_lookup_evals_per_sec", Json::n(per_lookup_rate)),
                ("per_lookup_events", Json::n(per_lookup_events as f64)),
                ("batched_evals_per_sec", Json::n(batched_rate)),
                ("batched_events", Json::n(batched_events as f64)),
                (
                    "batched_speedup",
                    Json::n(batched_rate / per_lookup_rate.max(1e-9)),
                ),
            ]),
        ),
        ("meets_2x_target", Json::Bool(cache_speedup >= 2.0)),
    ]);
    results::save("BENCH_eval_throughput", &doc);

    if cache_speedup < 2.0 {
        eprintln!("warning: memoization speedup {cache_speedup:.2}x below the 2x target");
    }
    if disabled_overhead_pct >= 2.0 {
        eprintln!(
            "warning: disabled-profiler overhead {disabled_overhead_pct:.2}% exceeds the 2% budget"
        );
    }
}
