//! `eval_throughput` — evals/sec of the evaluation engine across its
//! operating regimes, written to `results/BENCH_eval_throughput.json`.
//!
//! ```text
//! cargo run --release -p s2fa-bench --bin eval_throughput
//! ```
//!
//! The headline number is the **memoization speedup**: evals/sec with a
//! warm cache over evals/sec with caching disabled — the steady-state win
//! the DSE driver sees when partitions, seeds, and the probe pass revisit
//! canonical design points. Thread scaling of the batch path is reported
//! alongside (it tracks the host's core count; single-core CI reports
//! ~1×).

use rand::{rngs::SmallRng, SeedableRng};
use s2fa::compile_kernel;
use s2fa_bench::results::{self, Json};
use s2fa_dse::{DesignSpace, EvalEngine};
use s2fa_hlsir::analysis;
use s2fa_hlssim::Estimator;
use s2fa_tuner::{Config, Measurement, Objective, ThreadedObjective};
use s2fa_workloads::sw;
use std::time::Instant;

const BATCH: usize = 512;
const ROUNDS: usize = 40;

fn evals_per_sec(mut run_batch: impl FnMut()) -> f64 {
    // one untimed warm-up round so lazy setup (thread pools, cache fills
    // for the warm regime) stays out of the measurement
    run_batch();
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        run_batch();
    }
    (BATCH * ROUNDS) as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let w = sw::workload();
    let g = compile_kernel(&w.spec).expect("compiles");
    let s = analysis::summarize(&g.cfunc, 1024).expect("analyzes");
    let ds = DesignSpace::build(&s);
    let est = Estimator::new();
    let mut rng = SmallRng::seed_from_u64(42);
    let configs: Vec<Config> = (0..BATCH).map(|_| ds.space().random(&mut rng)).collect();
    // the serial regimes measure the engine itself, on pre-decoded points
    let designs: Vec<_> = configs.iter().map(|c| ds.decode(c)).collect();

    // Uncached serial: the pre-engine baseline (estimator walk per eval).
    let mut uncached_engine = EvalEngine::new(&s, &est);
    uncached_engine.set_caching(false);
    let uncached = evals_per_sec(|| {
        for dc in &designs {
            std::hint::black_box(uncached_engine.evaluate(dc));
        }
    });

    // Warm cache: the DSE steady state (every eval a shard lookup).
    let warm_engine = EvalEngine::new(&s, &est);
    let warm = evals_per_sec(|| {
        for dc in &designs {
            std::hint::black_box(warm_engine.evaluate(dc));
        }
    });
    let warm_stats = warm_engine.cache_stats();

    // Batch path thread scaling (bounded by the host's core count).
    let eval = |cfg: &Config| -> Measurement {
        let e = uncached_engine.evaluate(&ds.decode(cfg));
        Measurement {
            value: e.objective(),
            minutes: e.hls_minutes,
        }
    };
    let mut threaded = Vec::new();
    for threads in [1usize, 8] {
        let mut obj = ThreadedObjective::new(&eval, threads);
        let rate = evals_per_sec(|| {
            std::hint::black_box(obj.measure_batch(&configs));
        });
        threaded.push((threads, rate));
    }

    let cache_speedup = warm / uncached;
    let thread_speedup = threaded[1].1 / threaded[0].1;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    println!("evaluation-engine throughput (S-W design space, batch of {BATCH}):");
    println!("  uncached serial   : {uncached:>12.0} evals/sec");
    println!("  warm cache        : {warm:>12.0} evals/sec   ({cache_speedup:.1}x)");
    for (t, r) in &threaded {
        println!("  threaded x{t:<2}      : {r:>12.0} evals/sec");
    }
    println!("  host cores        : {cores}");
    println!(
        "  warm-cache hit rate: {:.1}% ({} hits / {} lookups)",
        100.0 * warm_stats.hit_rate(),
        warm_stats.hits,
        warm_stats.hits + warm_stats.misses
    );

    let doc = Json::obj(vec![
        ("kernel", Json::s("S-W")),
        ("batch", Json::n(BATCH as f64)),
        ("rounds", Json::n(ROUNDS as f64)),
        ("host_cores", Json::n(cores as f64)),
        ("uncached_evals_per_sec", Json::n(uncached)),
        ("warm_cache_evals_per_sec", Json::n(warm)),
        ("cache_speedup", Json::n(cache_speedup)),
        (
            "threaded_evals_per_sec",
            Json::Arr(
                threaded
                    .iter()
                    .map(|&(t, r)| {
                        Json::obj(vec![
                            ("threads", Json::n(t as f64)),
                            ("evals_per_sec", Json::n(r)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("thread_speedup", Json::n(thread_speedup)),
        ("cache_hits", Json::n(warm_stats.hits as f64)),
        (
            "cache_lookups",
            Json::n((warm_stats.hits + warm_stats.misses) as f64),
        ),
        ("meets_2x_target", Json::Bool(cache_speedup >= 2.0)),
    ]);
    results::save("BENCH_eval_throughput", &doc);

    if cache_speedup < 2.0 {
        eprintln!("warning: memoization speedup {cache_speedup:.2}x below the 2x target");
    }
}
