//! Regenerates **Table 2** — resource utilization and clock frequency of
//! the best DSE-generated design for every kernel.
//!
//! ```text
//! cargo run --release -p s2fa-bench --bin table2
//! ```

use s2fa::report::{resource_table, ResourceRow};
use s2fa::{S2fa, S2faOptions};
use s2fa_bench::results::{save, Json};
use s2fa_workloads::all_workloads;

/// The paper's Table 2 values, for side-by-side comparison.
const PAPER: &[(&str, [u32; 4], u32)] = &[
    ("PR", [25, 2, 16, 18], 250),
    ("KMeans", [73, 6, 10, 14], 230),
    ("KNN", [75, 6, 50, 50], 240),
    ("LR", [74, 3, 49, 74], 220),
    ("SVM", [74, 4, 48, 72], 250),
    ("LLS", [74, 3, 45, 21], 230),
    ("AES", [36, 0, 3, 6], 250),
    ("S-W", [33, 30, 54, 75], 100),
];

fn main() {
    let framework = S2fa::new(S2faOptions::default());
    let device = framework.estimator().device().clone();
    let mut rows = Vec::new();
    println!("Running the full automatic flow (codegen + DSE) per kernel ...");
    for w in all_workloads() {
        let compiled = framework
            .compile(&w.spec)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        println!("  {:<7} best design: {}", w.name, compiled.design.brief());
        rows.push(ResourceRow::from_compiled(&compiled, w.category, &device));
    }
    println!();
    println!("Table 2: Resource Utilization and Clock Frequency (MHz) — measured");
    println!("{}", resource_table(&rows));
    println!("Paper's Table 2, for comparison:");
    println!("| Kernel   | Type           | BRAM | DSP | FF  | LUT | Freq |");
    println!("|----------|----------------|------|-----|-----|-----|------|");
    for (name, [b, d, f, l], freq) in PAPER {
        let cat = all_workloads()
            .iter()
            .find(|w| w.name == *name)
            .map(|w| w.category)
            .unwrap_or("");
        println!("| {name:<8} | {cat:<14} | {b:>4}% | {d:>3}% | {f:>3}% | {l:>3}% | {freq:>4} |");
    }
    println!();
    // Shape checks the paper calls out in §5.2.
    let find = |n: &str| rows.iter().find(|r| r.kernel == n).expect("row exists");
    let util_max = |r: &ResourceRow| r.bram_pct.max(r.dsp_pct).max(r.ff_pct).max(r.lut_pct);
    println!("Shape checks:");
    for name in ["AES", "PR"] {
        let r = find(name);
        println!(
            "  {name}: memory-bound — peak utilization {:.0}% (paper: low utilization)",
            util_max(r)
        );
    }
    let compute_bound: Vec<String> = ["KMeans", "KNN", "LR", "SVM", "LLS"]
        .iter()
        .map(|n| format!("{n}={:.0}%", util_max(find(n))))
        .collect();
    println!(
        "  compute-bound kernels saturate a resource: {}",
        compute_bound.join(", ")
    );
    let sw = find("S-W");
    println!(
        "  S-W clock: {:.0} MHz (paper: 100 MHz, degraded by the DP wavefront)",
        sw.freq_mhz
    );

    save(
        "table2",
        &Json::Arr(
            rows.iter()
                .map(|r| {
                    Json::obj(vec![
                        ("kernel", Json::s(r.kernel.clone())),
                        ("category", Json::s(r.category.clone())),
                        ("bram_pct", Json::n(r.bram_pct)),
                        ("dsp_pct", Json::n(r.dsp_pct)),
                        ("ff_pct", Json::n(r.ff_pct)),
                        ("lut_pct", Json::n(r.lut_pct)),
                        ("freq_mhz", Json::n(r.freq_mhz)),
                    ])
                })
                .collect(),
        ),
    );
}
