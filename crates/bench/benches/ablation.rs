//! Ablation benchmarks of the §4.3 DSE accelerations: each variant runs
//! the full DSE with one optimization toggled, on one representative
//! compute kernel (KNN) and the small-space exception (KMeans).
//!
//! Criterion reports the *implementation* runtime of each variant; the
//! quality/virtual-time ablation numbers (what the paper's Fig. 3
//! discusses) are printed once per variant on the first iteration.
//!
//! ```text
//! cargo bench -p s2fa-bench --bench ablation
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use s2fa::compile_kernel;
use s2fa_dse::{run_dse, vanilla_options, DseOptions, StoppingKind};
use s2fa_hlsir::analysis;
use s2fa_hlssim::Estimator;
use s2fa_workloads::{kmeans, knn};
use std::sync::Once;

fn variants() -> Vec<(&'static str, DseOptions)> {
    let base = DseOptions::s2fa();
    let mut no_partition = base.clone();
    no_partition.partition = false;
    let mut no_seeds = base.clone();
    no_seeds.seeds = false;
    let mut trivial_stop = base.clone();
    trivial_stop.stopping = StoppingKind::Trivial { k: 10 };
    let mut time_limit = base.clone();
    time_limit.stopping = StoppingKind::TimeLimit;
    vec![
        ("s2fa_full", base),
        ("no_partition", no_partition),
        ("no_seeds", no_seeds),
        ("trivial_stop", trivial_stop),
        ("no_early_stop", time_limit),
        ("vanilla_opentuner", vanilla_options()),
    ]
}

fn bench_ablation(c: &mut Criterion) {
    static PRINT: Once = Once::new();
    for w in [knn::workload(), kmeans::workload()] {
        let generated = compile_kernel(&w.spec).expect("compiles");
        let summary = analysis::summarize(&generated.cfunc, 1024).expect("analyzes");
        let estimator = Estimator::new();
        // One-time quality report so the ablation numbers are visible in
        // the bench log.
        PRINT.call_once(|| {
            eprintln!(
                "\nDSE ablation (quality / virtual time), kernel {}:",
                w.name
            );
            for (name, opts) in variants() {
                let out = run_dse(&summary, &estimator, &opts);
                eprintln!(
                    "  {name:<18} best {:>10.4} ms | {:>5.1} virtual min | {:>4} evaluations",
                    out.best_value(),
                    out.elapsed_minutes,
                    out.total_evaluations
                );
            }
            eprintln!();
        });
        let mut g = c.benchmark_group(format!("dse_ablation/{}", w.name));
        g.sample_size(10);
        for (name, opts) in variants() {
            let s = summary.clone();
            let est = estimator.clone();
            g.bench_function(name, |b| b.iter(|| run_dse(&s, &est, &opts)));
        }
        g.finish();
    }
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
