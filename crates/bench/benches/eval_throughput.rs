//! Criterion micro-benchmarks of the evaluation engine: raw estimator
//! throughput against the memoized and batch-parallel paths that the DSE
//! driver actually uses.
//!
//! ```text
//! cargo bench -p s2fa-bench --bench eval_throughput
//! ```
//!
//! Four regimes bracket the design:
//!
//! * `cold_cache` — every point is new; the cache only adds fingerprint +
//!   insert overhead on top of the estimator walk.
//! * `warm_cache` — the DSE steady state (partitions re-visit boundary
//!   points, seeds repeat): every evaluation is a shard lookup.
//! * `threads/{1,8}` — the batch path `TuningRun` drives through
//!   `ThreadedObjective`; on multi-core hosts the 8-thread row scales,
//!   on single-core CI it degenerates gracefully to serial.
//!
//! `src/bin/eval_throughput.rs` turns the same regimes into evals/sec
//! numbers under `results/BENCH_eval_throughput.json`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::{rngs::SmallRng, SeedableRng};
use s2fa::compile_kernel;
use s2fa_dse::{DesignSpace, EvalEngine};
use s2fa_hlsir::analysis;
use s2fa_hlssim::Estimator;
use s2fa_tuner::{Config, Measurement, Objective, ThreadedObjective};
use s2fa_workloads::sw;

/// A workload-shaped batch: random tuner configurations over the S-W
/// design space, duplicates and all (the cache sees exactly this stream).
fn fixture(
    n: usize,
) -> (
    s2fa_hlsir::KernelSummary,
    DesignSpace,
    Estimator,
    Vec<Config>,
) {
    let w = sw::workload();
    let g = compile_kernel(&w.spec).unwrap();
    let s = analysis::summarize(&g.cfunc, 1024).unwrap();
    let ds = DesignSpace::build(&s);
    let mut rng = SmallRng::seed_from_u64(42);
    let configs = (0..n).map(|_| ds.space().random(&mut rng)).collect();
    (s, ds, Estimator::new(), configs)
}

fn bench_cache(c: &mut Criterion) {
    let (summary, ds, est, configs) = fixture(256);
    let summary = &summary;
    // the serial regimes measure the engine itself, on pre-decoded points
    let designs: Vec<_> = configs.iter().map(|c| ds.decode(c)).collect();
    let mut g = c.benchmark_group("eval_throughput");

    g.bench_function("uncached/256_evals", |b| {
        let mut engine = EvalEngine::new(summary, &est);
        engine.set_caching(false);
        b.iter(|| {
            for dc in &designs {
                std::hint::black_box(engine.evaluate(dc));
            }
        })
    });

    g.bench_function("cold_cache/256_evals", |b| {
        b.iter_batched(
            || EvalEngine::new(summary, &est),
            |engine| {
                for dc in &designs {
                    std::hint::black_box(engine.evaluate(dc));
                }
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("warm_cache/256_evals", |b| {
        let engine = EvalEngine::new(summary, &est);
        for dc in &designs {
            engine.evaluate(dc);
        }
        b.iter(|| {
            for dc in &designs {
                std::hint::black_box(engine.evaluate(dc));
            }
        })
    });

    g.finish();
}

fn bench_threads(c: &mut Criterion) {
    let (summary, ds, est, configs) = fixture(256);
    let engine = EvalEngine::new(&summary, &est);
    let eval = |cfg: &Config| -> Measurement {
        let e = engine.evaluate(&ds.decode(cfg));
        Measurement {
            value: e.objective(),
            minutes: e.hls_minutes,
        }
    };
    let mut g = c.benchmark_group("eval_throughput");
    for threads in [1usize, 8] {
        g.bench_function(format!("threads/{threads}/256_evals"), |b| {
            let mut obj = ThreadedObjective::new(&eval, threads);
            b.iter(|| std::hint::black_box(obj.measure_batch(&configs)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cache, bench_threads);
criterion_main!(benches);
