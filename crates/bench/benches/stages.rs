//! Criterion micro-benchmarks of every pipeline stage: how fast is this
//! *implementation* (not the modelled FPGA), stage by stage.
//!
//! ```text
//! cargo bench -p s2fa-bench --bench stages
//! ```

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use s2fa::compile_kernel;
use s2fa_dse::{DesignSpace, Partitioner};
use s2fa_hlsir::analysis;
use s2fa_hlssim::Estimator;
use s2fa_merlin::DesignConfig;
use s2fa_tuner::{Config, Measurement, TimeLimitOnly, TuningOptions, TuningRun};
use s2fa_workloads::{kmeans, sw};

fn bench_codegen(c: &mut Criterion) {
    let mut g = c.benchmark_group("codegen");
    for w in [kmeans::workload(), sw::workload()] {
        g.bench_function(format!("bytecode_to_c/{}", w.name), |b| {
            b.iter(|| compile_kernel(&w.spec).expect("compiles"))
        });
    }
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("analysis");
    for w in [kmeans::workload(), sw::workload()] {
        let gen = compile_kernel(&w.spec).unwrap();
        g.bench_function(format!("summarize/{}", w.name), |b| {
            b.iter(|| analysis::summarize(&gen.cfunc, 1024).expect("analyzes"))
        });
    }
    g.finish();
}

fn bench_estimator(c: &mut Criterion) {
    let mut g = c.benchmark_group("hls_estimator");
    let est = Estimator::new();
    for w in [kmeans::workload(), sw::workload()] {
        let gen = compile_kernel(&w.spec).unwrap();
        let s = analysis::summarize(&gen.cfunc, 1024).unwrap();
        let cfg = DesignConfig::perf_seed(&s);
        g.bench_function(format!("evaluate/{}", w.name), |b| {
            b.iter(|| est.evaluate(&s, &cfg))
        });
    }
    g.finish();
}

fn bench_tuner(c: &mut Criterion) {
    let mut g = c.benchmark_group("tuner");
    let w = kmeans::workload();
    let gen = compile_kernel(&w.spec).unwrap();
    let s = analysis::summarize(&gen.cfunc, 1024).unwrap();
    let ds = DesignSpace::build(&s);
    let est = Estimator::new();
    g.bench_function("100_evaluations", |b| {
        b.iter_batched(
            || {
                TuningRun::new(
                    ds.space().clone(),
                    TuningOptions {
                        budget_minutes: f64::INFINITY,
                        max_evaluations: 100,
                        ..TuningOptions::default()
                    },
                )
            },
            |run| {
                run.run(
                    &mut |cfg: &Config| {
                        let e = est.evaluate(&s, &ds.decode(cfg));
                        Measurement::new(e.objective(), e.hls_minutes)
                    },
                    &mut TimeLimitOnly,
                )
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_partitioner(c: &mut Criterion) {
    let mut g = c.benchmark_group("partitioner");
    g.sample_size(20);
    let w = sw::workload();
    let gen = compile_kernel(&w.spec).unwrap();
    let s = analysis::summarize(&gen.cfunc, 1024).unwrap();
    let ds = DesignSpace::build(&s);
    let est = Estimator::new();
    g.bench_function("decision_tree/S-W", |b| {
        b.iter(|| {
            Partitioner::default().partition(&ds, &s, &mut |cfg: &Config| {
                est.evaluate(&s, &ds.decode(cfg)).objective()
            })
        })
    });
    g.finish();
}

fn bench_serialization(c: &mut Criterion) {
    let mut g = c.benchmark_group("blaze_serializer");
    let w = kmeans::workload();
    let gen = compile_kernel(&w.spec).unwrap();
    let records = (w.gen_input)(1024, 5);
    g.bench_function("serialize_1024_records", |b| {
        b.iter(|| gen.input_layout.serialize(&records).expect("serializes"))
    });
    let bufs = gen.input_layout.serialize(&records).unwrap();
    g.bench_function("deserialize_1024_records", |b| {
        b.iter(|| {
            gen.input_layout
                .deserialize(&bufs, 1024)
                .expect("deserializes")
        })
    });
    g.finish();
}

fn bench_execution_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("functional_execution");
    g.sample_size(20);
    let w = kmeans::workload();
    let gen = compile_kernel(&w.spec).unwrap();
    let accel = s2fa_blaze::Accelerator {
        id: "k".into(),
        kernel: gen.cfunc.clone(),
        operator: w.spec.operator,
        input_layout: gen.input_layout.clone(),
        output_layout: gen.output_layout.clone(),
        time_model: None,
    };
    let records = (w.gen_input)(64, 5);
    g.bench_function("ir_executor_64_tasks", |b| {
        b.iter(|| accel.run_batch(&records).expect("runs"))
    });
    g.bench_function("jvm_interpreter_64_tasks", |b| {
        b.iter(|| {
            let mut interp = s2fa_sjvm::Interp::new(&w.spec.classes, &w.spec.methods);
            for rec in &records {
                interp
                    .run(w.spec.entry, std::slice::from_ref(rec))
                    .expect("runs");
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_codegen,
    bench_analysis,
    bench_estimator,
    bench_tuner,
    bench_partitioner,
    bench_serialization,
    bench_execution_paths
);
criterion_main!(benches);
