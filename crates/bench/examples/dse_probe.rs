//! Developer probe: prints per-kernel S2FA-vs-vanilla DSE dynamics (best
//! objective, time-to-quality marks, per-partition stop reasons) in one
//! table per kernel. Used while calibrating the Fig. 3 behaviour; kept as
//! a convenient diagnostic.
//!
//! ```text
//! cargo run --release -p s2fa-bench --example dse_probe
//! ```

use s2fa::compile_kernel;
use s2fa_dse::{run_dse, vanilla_options, DseOptions};
use s2fa_hlsir::analysis;
use s2fa_hlssim::Estimator;
use s2fa_workloads::all_workloads;

fn main() {
    let est = Estimator::new();
    for w in all_workloads() {
        let g = compile_kernel(&w.spec).unwrap();
        let s = analysis::summarize(&g.cfunc, 1024).unwrap();
        let s2 = run_dse(&s, &est, &DseOptions::s2fa());
        let va = run_dse(&s, &est, &vanilla_options());
        let conv = |o: &s2fa_dse::DseOutcome| {
            (
                o.best_at_minute(30.0),
                o.best_at_minute(60.0),
                o.best_at_minute(120.0),
                o.best_value(),
            )
        };
        println!("{:<7} S2FA best={:>9.4} t={:>5.1} evals={:<4} | VAN best={:>9.4} t=240 evals={:<4} | qor_ratio={:.2} | s2fa@(30,60,120)={:?} van@(30,60,120)={:?}",
            w.name, s2.best_value(), s2.elapsed_minutes, s2.total_evaluations,
            va.best_value(), va.total_evaluations,
            va.best_value()/s2.best_value(), conv(&s2), conv(&va));
        let conv_reasons: Vec<String> = s2
            .per_partition
            .iter()
            .map(|p| format!("{:?}@{:.0}", p.reason, p.elapsed_minutes))
            .collect();
        println!("        partitions: {}", conv_reasons.join(" "));
    }
}
