#!/usr/bin/env bash
# Full repository health check: formatting, lints, docs, tests, examples,
# and the experiment binaries. Everything must be green.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt =="
cargo fmt --all -- --check

echo "== clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== rustdoc =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== tests =="
cargo test --workspace --release

echo "== examples =="
for e in quickstart smith_waterman kmeans_pipeline dse_anatomy; do
  cargo run --release -p s2fa --example "$e" > /dev/null
  echo "  example $e ok"
done

echo "== experiment binaries =="
for b in table1 table2 fig3 fig4; do
  cargo run --release -p s2fa-bench --bin "$b" > /dev/null
  echo "  bin $b ok"
done
cargo run --release -p s2fa-bench --bin s2fa_cli -- --list > /dev/null
echo "  bin s2fa_cli ok"

echo "ALL CHECKS PASSED"
