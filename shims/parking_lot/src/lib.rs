//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps the standard-library locks behind `parking_lot`'s non-poisoning
//! API (the subset this workspace uses). A poisoned std lock means a
//! thread panicked while holding the guard; matching `parking_lot`
//! semantics, we ignore the poison flag and hand out the data anyway.

#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_concurrent_reads() {
        let l = Arc::new(RwLock::new(7));
        let l2 = Arc::clone(&l);
        let h = std::thread::spawn(move || *l2.read());
        assert_eq!(*l.read(), 7);
        assert_eq!(h.join().unwrap(), 7);
        *l.write() = 8;
        assert_eq!(*l.read(), 8);
    }
}
