//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides exactly the API subset the workspace uses: [`Rng`] with
//! `gen` / `gen_range` / `gen_bool`, [`SeedableRng::seed_from_u64`], and
//! [`rngs::SmallRng`] (xoshiro256++, the same algorithm the real
//! `SmallRng` uses on 64-bit targets). Streams are deterministic given a
//! seed but are not guaranteed to match upstream `rand` byte-for-byte —
//! nothing in this repository depends on the upstream streams.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A seedable generator (the subset of the upstream trait we need).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing random-value methods (auto-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..=1000), b.gen_range(0u32..=1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3u32..10);
            assert!((3..10).contains(&v));
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = r.gen_range(0i64..4);
            assert!((0..4).contains(&i));
            let u = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }
}
