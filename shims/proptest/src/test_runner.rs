//! The deterministic RNG driving property-test case generation.

/// A small deterministic generator (xoshiro256++ seeded via splitmix64).
///
/// Each test case gets its own instance derived from the test name and
/// the case index, so failures reproduce without recording seeds.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// An RNG fully determined by `(seed, stream)`.
    pub fn deterministic(seed: u64, stream: u64) -> Self {
        let mut sm = seed ^ stream.wrapping_mul(0x9E3779B97F4A7C15);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        TestRng { s }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `0..n` (`n` must be non-zero).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }

    /// Uniform value in `0..=n`.
    #[inline]
    pub fn below_inclusive(&mut self, n: u64) -> u64 {
        if n == u64::MAX {
            self.next_u64()
        } else {
            self.next_u64() % (n + 1)
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn deterministic_per_stream() {
        let mut a = TestRng::deterministic(1, 5);
        let mut b = TestRng::deterministic(1, 5);
        let mut c = TestRng::deterministic(1, 6);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn bounds_hold() {
        let mut r = TestRng::deterministic(2, 0);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            assert!(r.below_inclusive(3) <= 3);
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
