//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored shim
//! reimplements the subset of proptest this workspace uses: the
//! [`Strategy`] trait with `prop_map` / `prop_filter` / `prop_recursive`,
//! [`BoxedStrategy`], range and tuple strategies, `any::<T>()`,
//! `prop_oneof!`, [`Just`], `prop::collection::vec`, `prop::sample::select`,
//! a minimal regex-literal string strategy, and the `proptest!` /
//! `prop_assert*!` macros.
//!
//! Semantics: each test function runs `ProptestConfig::cases` random cases
//! seeded deterministically from the test name and case index. There is no
//! shrinking — a failing case panics with the generated inputs visible in
//! the assertion message (the inputs are reproducible because the seed
//! derivation is fixed).

#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub mod test_runner;

use test_runner::TestRng;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test function executes.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `f`, retrying (up to an internal limit).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Builds recursive values: `f` receives a strategy for the substructure
    /// and returns a strategy for one level above it; recursion nests at
    /// most `depth` levels. The `_desired_size` and `_expected_branch_size`
    /// parameters exist for API compatibility and are ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            rec: Arc::new(move |inner| f(inner).boxed()),
            depth,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe view of [`Strategy`] (used by [`BoxedStrategy`]).
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1024 candidates", self.whence);
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    #[allow(clippy::type_complexity)]
    rec: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Strategy for Recursive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let levels = rng.below(self.depth as u64 + 1) as u32;
        let mut strat = self.base.clone();
        for _ in 0..levels {
            strat = (self.rec)(strat);
        }
        strat.generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice among boxed alternatives (built by `prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over the given alternatives (must be non-empty).
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! of zero strategies");
        Union(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Values with a canonical "any value of the type" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32((rng.below(0xD800)) as u32).unwrap_or('a')
    }
}

/// The canonical strategy for a type (see [`any`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.below_inclusive(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// A simplified regex-literal strategy: supports sequences of literal
/// characters and `[a-z0-9]`-style classes, each optionally quantified by
/// `{n}`, `{m,n}`, `?`, `*`, or `+` (`*`/`+` are bounded at 8 repeats).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a char class or a literal character.
        let alternatives: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pattern}`"));
            let mut alts = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    for c in lo..=hi {
                        alts.extend(char::from_u32(c));
                    }
                    j += 3;
                } else {
                    alts.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            alts
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pattern}`"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad quantifier"),
                    n.trim().parse::<usize>().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad quantifier");
                    (n, n)
                }
            }
        } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
            let q = chars[i];
            i += 1;
            match q {
                '*' => (0, 8),
                '+' => (1, 8),
                _ => (0, 1),
            }
        } else {
            (1, 1)
        };
        let n = min + rng.below_inclusive((max - min) as u64) as usize;
        for _ in 0..n {
            let k = rng.below(alternatives.len() as u64) as usize;
            out.push(alternatives[k]);
        }
    }
    out
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below_inclusive(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    /// `prop::sample::select(options)`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from an empty list");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].clone()
        }
    }
}

/// The conventional glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// Namespaced strategy modules (`prop::collection`, `prop::sample`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// FNV-1a hash of a string — used to derive per-test RNG seeds.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( #[test] fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __strats = ( $($strat,)* );
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        $crate::fnv1a(concat!(module_path!(), "::", stringify!($name))),
                        __case as u64,
                    );
                    #[allow(non_snake_case)]
                    let ( $($pat,)* ) =
                        $crate::__generate_tuple!(__strats, __rng, $($pat),*);
                    $body
                }
            }
        )*
    };
}

/// Implementation detail: generates one value per strategy in the tuple.
#[doc(hidden)]
#[macro_export]
macro_rules! __generate_tuple {
    ($strats:ident, $rng:ident, ) => {
        ()
    };
    ($strats:ident, $rng:ident, $p0:pat) => {
        ($crate::Strategy::generate(&$strats.0, &mut $rng),)
    };
    ($strats:ident, $rng:ident, $p0:pat, $p1:pat) => {
        (
            $crate::Strategy::generate(&$strats.0, &mut $rng),
            $crate::Strategy::generate(&$strats.1, &mut $rng),
        )
    };
    ($strats:ident, $rng:ident, $p0:pat, $p1:pat, $p2:pat) => {
        (
            $crate::Strategy::generate(&$strats.0, &mut $rng),
            $crate::Strategy::generate(&$strats.1, &mut $rng),
            $crate::Strategy::generate(&$strats.2, &mut $rng),
        )
    };
    ($strats:ident, $rng:ident, $p0:pat, $p1:pat, $p2:pat, $p3:pat) => {
        (
            $crate::Strategy::generate(&$strats.0, &mut $rng),
            $crate::Strategy::generate(&$strats.1, &mut $rng),
            $crate::Strategy::generate(&$strats.2, &mut $rng),
            $crate::Strategy::generate(&$strats.3, &mut $rng),
        )
    };
    ($strats:ident, $rng:ident, $p0:pat, $p1:pat, $p2:pat, $p3:pat, $p4:pat) => {
        (
            $crate::Strategy::generate(&$strats.0, &mut $rng),
            $crate::Strategy::generate(&$strats.1, &mut $rng),
            $crate::Strategy::generate(&$strats.2, &mut $rng),
            $crate::Strategy::generate(&$strats.3, &mut $rng),
            $crate::Strategy::generate(&$strats.4, &mut $rng),
        )
    };
    ($strats:ident, $rng:ident, $p0:pat, $p1:pat, $p2:pat, $p3:pat, $p4:pat, $p5:pat) => {
        (
            $crate::Strategy::generate(&$strats.0, &mut $rng),
            $crate::Strategy::generate(&$strats.1, &mut $rng),
            $crate::Strategy::generate(&$strats.2, &mut $rng),
            $crate::Strategy::generate(&$strats.3, &mut $rng),
            $crate::Strategy::generate(&$strats.4, &mut $rng),
            $crate::Strategy::generate(&$strats.5, &mut $rng),
        )
    };
    ($strats:ident, $rng:ident, $p0:pat, $p1:pat, $p2:pat, $p3:pat, $p4:pat, $p5:pat, $p6:pat) => {
        (
            $crate::Strategy::generate(&$strats.0, &mut $rng),
            $crate::Strategy::generate(&$strats.1, &mut $rng),
            $crate::Strategy::generate(&$strats.2, &mut $rng),
            $crate::Strategy::generate(&$strats.3, &mut $rng),
            $crate::Strategy::generate(&$strats.4, &mut $rng),
            $crate::Strategy::generate(&$strats.5, &mut $rng),
            $crate::Strategy::generate(&$strats.6, &mut $rng),
        )
    };
    ($strats:ident, $rng:ident, $p0:pat, $p1:pat, $p2:pat, $p3:pat, $p4:pat, $p5:pat, $p6:pat, $p7:pat) => {
        (
            $crate::Strategy::generate(&$strats.0, &mut $rng),
            $crate::Strategy::generate(&$strats.1, &mut $rng),
            $crate::Strategy::generate(&$strats.2, &mut $rng),
            $crate::Strategy::generate(&$strats.3, &mut $rng),
            $crate::Strategy::generate(&$strats.4, &mut $rng),
            $crate::Strategy::generate(&$strats.5, &mut $rng),
            $crate::Strategy::generate(&$strats.6, &mut $rng),
            $crate::Strategy::generate(&$strats.7, &mut $rng),
        )
    };
}

/// `assert!` under a property-test name (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a property-test name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under a property-test name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $($crate::Strategy::boxed($strat)),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = crate::test_runner::TestRng::deterministic(1, 2);
        let strat = (1u32..5, 0i64..=3).prop_map(|(a, b)| a as i64 + b);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..=7).contains(&v));
        }
    }

    #[test]
    fn oneof_and_just_cover_all_arms() {
        let mut rng = crate::test_runner::TestRng::deterministic(3, 4);
        let strat = prop_oneof![Just(1u8), Just(2u8), 5u8..7];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(strat.generate(&mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.contains(&5));
    }

    #[test]
    fn vec_and_select_sizes() {
        let mut rng = crate::test_runner::TestRng::deterministic(5, 6);
        let strat = prop::collection::vec(prop::sample::select(vec![7u32, 16]), 2..5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|x| *x == 7 || *x == 16));
        }
    }

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = crate::test_runner::TestRng::deterministic(7, 8);
        for _ in 0..100 {
            let s = "[a-z]{0,6}".generate(&mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(#[allow(dead_code)] u8),
            Node(Vec<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(v) => 1 + v.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = any::<u8>()
            .prop_map(T::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                prop::collection::vec(inner, 1..3).prop_map(T::Node)
            });
        let mut rng = crate::test_runner::TestRng::deterministic(9, 10);
        for _ in 0..50 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u32..4, 0u32..4), c in any::<i16>()) {
            prop_assert!(a < 4 && b < 4);
            let _ = c;
            prop_assume!(a != 3);
            prop_assert_ne!(a, 3);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
