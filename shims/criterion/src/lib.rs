//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro and type surface this workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `Bencher::iter` / `iter_batched`, `black_box`) with a
//! simple mean-of-N timing loop instead of criterion's full statistical
//! machinery: a short warm-up, then timed iterations until ~200 ms or a
//! sample cap, printing the mean per-iteration time.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted for API
/// compatibility; this shim always re-runs setup per iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The timing driver handed to `bench_function` closures.
pub struct Bencher {
    warmup: Duration,
    target: Duration,
    result: Option<(Duration, u64)>,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            warmup: Duration::from_millis(30),
            target: Duration::from_millis(200),
            result: None,
        }
    }

    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run untimed until the warm-up window elapses.
        let start = Instant::now();
        while start.elapsed() < self.warmup {
            black_box(routine());
        }
        let timed = Instant::now();
        let mut iters = 0u64;
        while timed.elapsed() < self.target && iters < 1_000_000 {
            black_box(routine());
            iters += 1;
        }
        self.result = Some((timed.elapsed(), iters.max(1)));
    }

    /// Times `routine` over fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let start = Instant::now();
        while start.elapsed() < self.warmup {
            let input = setup();
            black_box(routine(input));
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.target && iters < 1_000_000 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
            iters += 1;
        }
        self.result = Some((total, iters.max(1)));
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark and prints its mean time.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        match b.result {
            Some((elapsed, iters)) => {
                let mean = elapsed / iters as u32;
                println!(
                    "{}/{}  time: {}  ({} iterations)",
                    self.name,
                    id,
                    human(mean),
                    iters
                );
            }
            None => println!("{}/{}  (no measurement)", self.name, id),
        }
        self
    }

    /// Accepted for API compatibility; the shim's fixed measurement
    /// window ignores the requested sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the measurement window is fixed.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group(id.to_string())
            .bench_function("bench", f);
        self
    }
}

/// Declares a group-runner function invoking each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        let mut hits = 0u64;
        g.bench_function("iter", |b| b.iter(|| hits = hits.wrapping_add(1)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
        assert!(hits > 0);
    }
}
